package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func randomMatrix(rows, dim int, seed int64) Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, dim)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func TestBatchL2MatchesScalar(t *testing.T) {
	m := randomMatrix(50, 24, 1)
	q := make([]float32, 24)
	for i := range q {
		q[i] = float32(i) * 0.1
	}
	out := make([]float32, 50)
	BatchL2(q, m, out)
	for i := 0; i < 50; i++ {
		if out[i] != L2(q, m.Row(i)) {
			t.Fatalf("row %d: batch %v vs scalar %v", i, out[i], L2(q, m.Row(i)))
		}
	}
}

func TestBatchL2DecompMatchesDirect(t *testing.T) {
	m := randomMatrix(80, 32, 2)
	norms := RowNorms(m)
	q := make([]float32, 32)
	for i := range q {
		q[i] = float32(math.Sin(float64(i)))
	}
	direct := make([]float32, 80)
	decomp := make([]float32, 80)
	BatchL2(q, m, direct)
	BatchL2Decomp(q, m, norms, decomp)
	for i := range direct {
		diff := math.Abs(float64(direct[i]) - float64(decomp[i]))
		if diff > 1e-3*(1+float64(direct[i])) {
			t.Fatalf("row %d: direct %v vs decomposed %v", i, direct[i], decomp[i])
		}
	}
}

func TestBatchL2DecompNonNegative(t *testing.T) {
	// Near-duplicate rows provoke float cancellation; the decomposed kernel
	// must clamp at zero.
	m := NewMatrix(3, 4)
	q := []float32{1e3, 1e3, 1e3, 1e3}
	for i := 0; i < 3; i++ {
		copy(m.Row(i), q)
	}
	norms := RowNorms(m)
	out := make([]float32, 3)
	BatchL2Decomp(q, m, norms, out)
	for i, d := range out {
		if d < 0 {
			t.Fatalf("row %d: negative distance %v", i, d)
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	m := randomMatrix(4, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BatchL2(make([]float32, 2), m, make([]float32, 3))
}

func TestL2ToRowsMatchesScalar(t *testing.T) {
	m := randomMatrix(60, 24, 5)
	q := make([]float32, 24)
	for i := range q {
		q[i] = float32(i) * 0.2
	}
	ids := []int32{3, 0, 59, 17, 17, 42}
	out := make([]float32, len(ids))
	L2ToRows(m, q, ids, out)
	for i, id := range ids {
		if out[i] != L2(q, m.Row(int(id))) {
			t.Fatalf("id %d: gather %v vs scalar %v", id, out[i], L2(q, m.Row(int(id))))
		}
	}
	// Empty gather is a no-op.
	L2ToRows(m, q, nil, out)
}

func TestL2ToRowsCounter(t *testing.T) {
	m := randomMatrix(10, 8, 6)
	q := make([]float32, 8)
	ids := []int32{1, 4, 7}
	out := make([]float32, 8)
	var c Counter
	c.L2ToRows(m, q, ids, out)
	if c.Count() != 3 {
		t.Fatalf("counter = %d, want 3", c.Count())
	}
	for i, id := range ids {
		if out[i] != L2(q, m.Row(int(id))) {
			t.Fatalf("id %d: counted gather differs from scalar", id)
		}
	}
	// A nil counter is valid and still computes.
	var nilC *Counter
	nilC.L2ToRows(m, q, ids, out)
	if nilC.Count() != 0 {
		t.Fatal("nil counter must count nothing")
	}
}

func TestL2ToRowsShortOutputPanics(t *testing.T) {
	m := randomMatrix(4, 2, 7)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2ToRows(m, make([]float32, 2), []int32{0, 1, 2}, make([]float32, 2))
}

func BenchmarkL2ToRows(b *testing.B) {
	m := randomMatrix(4096, 128, 8)
	q := make([]float32, 128)
	ids := make([]int32, 64)
	rng := rand.New(rand.NewSource(9))
	for i := range ids {
		ids[i] = int32(rng.Intn(4096))
	}
	out := make([]float32, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		L2ToRows(m, q, ids, out)
	}
}

func BenchmarkBatchL2Direct(b *testing.B) {
	m := randomMatrix(1000, 128, 4)
	q := make([]float32, 128)
	out := make([]float32, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchL2(q, m, out)
	}
}

func BenchmarkBatchL2Decomp(b *testing.B) {
	m := randomMatrix(1000, 128, 4)
	norms := RowNorms(m)
	q := make([]float32, 128)
	out := make([]float32, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchL2Decomp(q, m, norms, out)
	}
}

func TestL2RowsToQueriesMatchesScalar(t *testing.T) {
	// Every (query, row) pair of the multi-query block must be bit-identical
	// to the single-pair kernel, across dimensions including every tail.
	for dim := 1; dim <= 200; dim++ {
		m := randomMatrix(16, dim, int64(dim))
		qs := randomMatrix(5, dim, int64(dim)+1000)
		ids := []int32{3, 0, 15, 7, 7}
		out := make([]float32, qs.Rows*len(ids))
		L2RowsToQueries(m, qs, ids, out)
		for q := 0; q < qs.Rows; q++ {
			for i, id := range ids {
				if got, want := out[q*len(ids)+i], L2(qs.Row(q), m.Row(int(id))); got != want {
					t.Fatalf("dim %d query %d id %d: block %v != scalar %v", dim, q, id, got, want)
				}
			}
		}
	}
}

func TestL2RowsToQueriesCounter(t *testing.T) {
	m := randomMatrix(10, 8, 21)
	qs := randomMatrix(3, 8, 22)
	ids := []int32{1, 4, 7, 2}
	out := make([]float32, 12)
	var c Counter
	c.L2RowsToQueries(m, qs, ids, out)
	if c.Count() != 12 {
		t.Fatalf("counter = %d, want 12", c.Count())
	}
	var nilC *Counter
	nilC.L2RowsToQueries(m, qs, ids, out) // must not panic
}

func TestL2RowsToQueriesShortOutputPanics(t *testing.T) {
	m := randomMatrix(4, 2, 23)
	qs := randomMatrix(2, 2, 24)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2RowsToQueries(m, qs, []int32{0, 1, 2}, make([]float32, 5))
}

func TestL2RowsToQueriesDimMismatchPanics(t *testing.T) {
	m := randomMatrix(4, 3, 25)
	qs := randomMatrix(2, 2, 26)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	L2RowsToQueries(m, qs, []int32{0, 1}, make([]float32, 4))
}
