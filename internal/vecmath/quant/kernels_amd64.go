//go:build amd64

package quant

import "os"

// AVX2 dispatch for the SQ8 kernel. The toolchain assembles the .s file
// directly, so this costs no dependency; support is probed once at init
// through CPUID/XGETBV (AVX2 in the CPU *and* YMM state enabled by the OS).
// useAVX2 can be flipped off in tests to exercise the generic path, and
// the NSG_NO_AVX2 environment variable (any non-empty value) forces the
// scalar fallback at startup — the hook CI's kernel-matrix lane uses to
// gate the portable path on hardware where the vector path would
// otherwise always win the dispatch.

var useAVX2 = hasAVX2() && os.Getenv("NSG_NO_AVX2") == ""

// l2Levels16AVX2 sums (levels[i]-code[i])² over i < n, n a multiple of 16.
// Implemented in kernels_amd64.s.
//
//go:noescape
func l2Levels16AVX2(levels *int16, code *uint8, n int) int32

// l2Levels4AVX2 sums (levels[i]-nibble(code,i))² over i < n, n a multiple
// of 32 dimensions (16 packed code bytes). Implemented in kernels_amd64.s.
//
//go:noescape
func l2Levels4AVX2(levels *int16, code *uint8, n int) int32

// cpuid executes CPUID with the given leaf/subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0.
func xgetbv() (eax, edx uint32)

func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if c&osxsaveBit == 0 || c&avxBit == 0 {
		return false
	}
	// The OS must have enabled XMM and YMM state saving.
	if eax, _ := xgetbv(); eax&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}
