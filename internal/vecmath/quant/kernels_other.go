//go:build !amd64

package quant

// Non-amd64 architectures run the portable scalar kernel.

const useAVX2 = false

// l2Levels16AVX2 is never called when useAVX2 is false; this stub keeps the
// dispatch in kernels.go architecture-independent.
func l2Levels16AVX2(levels *int16, code *uint8, n int) int32 {
	panic("quant: AVX2 kernel called on non-amd64 build")
}

// l2Levels4AVX2 is never called when useAVX2 is false; same role as the
// l2Levels16AVX2 stub for the packed int4 dispatch in kernels4.go.
func l2Levels4AVX2(levels *int16, code *uint8, n int) int32 {
	panic("quant: AVX2 kernel called on non-amd64 build")
}
