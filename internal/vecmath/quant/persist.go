package quant

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/chunkio"
)

// Persistence for the trained grid and the code matrix. Storing both with
// the index lets a load skip retraining and re-encoding entirely: the scale
// is re-derived from the persisted bounds (deriveScale is the single
// definition), so a reloaded quantizer is bit-identical to the original.
//
// Readers consume exactly the bytes their writer produced — sections embed
// in larger index files, so nothing here wraps the stream in its own
// buffering.

const (
	quantizerMagic  = 0x53513851 // "SQ8Q"
	codesMagic      = 0x53513843 // "SQ8C"
	quantizer4Magic = 0x53513451 // "SQ4Q"
	codes4Magic     = 0x53513443 // "SQ4C"
)

// WriteQuantizer serializes the trained grid bounds.
func WriteQuantizer(w io.Writer, q *Quantizer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], quantizerMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(q.Dim()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("quant: write quantizer header: %w", err)
	}
	if err := writeFloats(w, q.Min); err != nil {
		return err
	}
	return writeFloats(w, q.Max)
}

// ReadQuantizer deserializes a grid written by WriteQuantizer and re-derives
// its shared step.
func ReadQuantizer(r io.Reader) (Quantizer, error) {
	var q Quantizer
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return q, fmt.Errorf("quant: read quantizer header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != quantizerMagic {
		return q, fmt.Errorf("quant: bad quantizer magic")
	}
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	if dim <= 0 || dim > MaxDim {
		return q, fmt.Errorf("quant: implausible quantizer dimension %d", dim)
	}
	var err error
	if q.Min, err = readFloats(r, dim); err != nil {
		return q, err
	}
	if q.Max, err = readFloats(r, dim); err != nil {
		return q, err
	}
	q.deriveScale()
	return q, nil
}

// WriteCodes serializes a code matrix; the payload is the raw byte slab, so
// encoding costs one pass over memory.
func WriteCodes(w io.Writer, c CodeMatrix) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], codesMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.Dim))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("quant: write codes header: %w", err)
	}
	if _, err := w.Write(c.Codes); err != nil {
		return fmt.Errorf("quant: write codes: %w", err)
	}
	return nil
}

// ReadCodes deserializes a code matrix written by WriteCodes.
func ReadCodes(r io.Reader) (CodeMatrix, error) { return ReadCodesShape(r, -1, -1) }

// ReadCodesShape deserializes a code matrix, rejecting any shape other
// than wantRows×wantDim before allocating — callers that know the expected
// shape from surrounding context must pass it so a corrupt header cannot
// turn into a giant allocation. Negative bounds accept any plausible value.
func ReadCodesShape(r io.Reader, wantRows, wantDim int) (CodeMatrix, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return CodeMatrix{}, fmt.Errorf("quant: read codes header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != codesMagic {
		return CodeMatrix{}, fmt.Errorf("quant: bad codes magic")
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows <= 0 || dim <= 0 || rows > 1<<30 || dim > MaxDim {
		return CodeMatrix{}, fmt.Errorf("quant: implausible code matrix shape %dx%d", rows, dim)
	}
	if (wantRows >= 0 && rows != wantRows) || (wantDim >= 0 && dim != wantDim) {
		return CodeMatrix{}, fmt.Errorf("quant: code matrix shape %dx%d, want %dx%d", rows, dim, wantRows, wantDim)
	}
	c := NewCodeMatrix(rows, dim)
	if _, err := io.ReadFull(r, c.Codes); err != nil {
		return CodeMatrix{}, fmt.Errorf("quant: truncated codes: %w", err)
	}
	return c, nil
}

// WriteQuantizer4 serializes a trained int4 grid's bounds — the int4 twin
// of WriteQuantizer, under its own magic so the two families cannot alias.
func WriteQuantizer4(w io.Writer, q *Quantizer4) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], quantizer4Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(q.Dim()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("quant: write quantizer header: %w", err)
	}
	if err := writeFloats(w, q.Min); err != nil {
		return err
	}
	return writeFloats(w, q.Max)
}

// ReadQuantizer4 deserializes a grid written by WriteQuantizer4 and
// re-derives its shared step, bit-identically to the trained original.
func ReadQuantizer4(r io.Reader) (Quantizer4, error) {
	var q Quantizer4
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return q, fmt.Errorf("quant: read quantizer header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != quantizer4Magic {
		return q, fmt.Errorf("quant: bad int4 quantizer magic")
	}
	dim := int(binary.LittleEndian.Uint32(hdr[4:]))
	if dim <= 0 || dim > MaxDim4 {
		return q, fmt.Errorf("quant: implausible quantizer dimension %d", dim)
	}
	var err error
	if q.Min, err = readFloats(r, dim); err != nil {
		return q, err
	}
	if q.Max, err = readFloats(r, dim); err != nil {
		return q, err
	}
	q.deriveScale()
	return q, nil
}

// WriteCodes4 serializes a packed code matrix; the payload is the raw
// nibble slab (Rows*Stride bytes), one pass over memory.
func WriteCodes4(w io.Writer, c Code4Matrix) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], codes4Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(c.Rows))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(c.Dim))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("quant: write codes header: %w", err)
	}
	if _, err := w.Write(c.Codes); err != nil {
		return fmt.Errorf("quant: write codes: %w", err)
	}
	return nil
}

// ReadCodes4Shape deserializes a packed code matrix written by WriteCodes4,
// rejecting any shape other than wantRows×wantDim before allocating — same
// contract as ReadCodesShape. Negative bounds accept any plausible value.
func ReadCodes4Shape(r io.Reader, wantRows, wantDim int) (Code4Matrix, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Code4Matrix{}, fmt.Errorf("quant: read codes header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != codes4Magic {
		return Code4Matrix{}, fmt.Errorf("quant: bad int4 codes magic")
	}
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	if rows <= 0 || dim <= 0 || rows > 1<<30 || dim > MaxDim4 {
		return Code4Matrix{}, fmt.Errorf("quant: implausible code matrix shape %dx%d", rows, dim)
	}
	if (wantRows >= 0 && rows != wantRows) || (wantDim >= 0 && dim != wantDim) {
		return Code4Matrix{}, fmt.Errorf("quant: code matrix shape %dx%d, want %dx%d", rows, dim, wantRows, wantDim)
	}
	c := NewCode4Matrix(rows, dim)
	if _, err := io.ReadFull(r, c.Codes); err != nil {
		return Code4Matrix{}, fmt.Errorf("quant: truncated codes: %w", err)
	}
	return c, nil
}

func writeFloats(w io.Writer, vals []float32) error {
	if err := chunkio.WriteFloat32s(w, vals); err != nil {
		return fmt.Errorf("quant: write floats: %w", err)
	}
	return nil
}

func readFloats(r io.Reader, n int) ([]float32, error) {
	out := make([]float32, n)
	if err := chunkio.ReadFloat32s(r, out); err != nil {
		return nil, fmt.Errorf("quant: truncated floats: %w", err)
	}
	return out, nil
}
