// Package quant implements SQ8 scalar quantization for the search hot path:
// every base vector is compressed to one byte per dimension, shrinking the
// bytes a graph expansion gathers by 4x. Graph traversal at serving scale is
// memory-bandwidth-bound (the paper serves 1e8-scale E-commerce vectors on
// commodity hardware; Section 6 discusses the hardware ceiling), so the code
// matrix is the factor-level lever once the search loop itself is
// allocation-free.
//
// The scheme is asymmetric: base vectors are encoded once into uint8 codes
// on a per-dimension min/max grid, while the query is never truncated to a
// code — at search time it is prepared into int32 grid levels (allowed to
// sit outside the trained [0,255] range), and distances accumulate in pure
// int32 arithmetic:
//
//	dist²(q, x) ≈ scale² · Σ_d (level_d(q) − code_d(x))²
//
// The grid offsets are trained per dimension (Min[d]), but the grid step
// ("scale") is shared across dimensions — that is what keeps the inner loop
// free of per-dimension float multiplies and lets one int32 accumulator
// chain run over the whole vector. Dimensions with narrower ranges simply
// use fewer of the 256 levels. The residual quantization error is absorbed
// by the caller's exact rerank pass (see core.NSG's quantized search),
// which recomputes float32 distances for the final candidate pool.
package quant

import (
	"fmt"

	"repro/internal/vecmath"
)

// queryPad is how far outside the trained [0,255] range a prepared query
// level may sit before clamping. Padding keeps out-of-distribution queries
// ordered correctly near the trained region while bounding the worst-case
// per-dimension difference (255+queryPad) so the int32 accumulator cannot
// overflow for any supported dimension.
const queryPad = 128

// MaxDim is the largest vector dimension the int32 distance accumulation
// supports: (255+queryPad)² per dimension summed over MaxDim dimensions
// stays below 2³¹−1.
const MaxDim = (1<<31 - 1) / ((255 + queryPad) * (255 + queryPad))

// Quantizer holds a trained SQ8 grid: per-dimension bounds and the shared
// step derived from the widest dimension. The zero value is not usable;
// obtain one from Train or ReadQuantizer.
type Quantizer struct {
	Min []float32 // per-dimension lower bound (grid offset)
	Max []float32 // per-dimension upper bound (training only; step derives from the widest span)

	scale    float32 // shared grid step: widest span / 255
	invScale float32
	distMul  float32 // scale², folded once into every distance
}

// Train fits the grid to the rows of m: per-dimension min/max in one pass,
// then a shared step sized so the widest dimension spans all 256 levels.
// Training is order-invariant, so a quantizer trained on the full dataset
// can be shared by every shard of a partitioned index.
func Train(m vecmath.Matrix) Quantizer {
	if m.Rows == 0 || m.Dim == 0 {
		panic("quant: cannot train on an empty matrix")
	}
	if m.Dim > MaxDim {
		panic(fmt.Sprintf("quant: dimension %d exceeds the int32 accumulation limit %d", m.Dim, MaxDim))
	}
	q := Quantizer{Min: make([]float32, m.Dim), Max: make([]float32, m.Dim)}
	copy(q.Min, m.Row(0))
	copy(q.Max, m.Row(0))
	for i := 1; i < m.Rows; i++ {
		row := m.Row(i)
		for d, v := range row {
			if v < q.Min[d] {
				q.Min[d] = v
			}
			if v > q.Max[d] {
				q.Max[d] = v
			}
		}
	}
	q.deriveScale()
	return q
}

// FromBounds reconstructs a quantizer from persisted per-dimension bounds.
// Because the scale is re-derived by the same deriveScale that training
// uses, the result is bit-identical to the originally trained quantizer —
// the property the mapped serving path relies on for heap/mapped parity.
func FromBounds(min, max []float32) Quantizer {
	if len(min) != len(max) || len(min) == 0 {
		panic(fmt.Sprintf("quant: bounds lengths %d/%d invalid", len(min), len(max)))
	}
	q := Quantizer{Min: min, Max: max}
	q.deriveScale()
	return q
}

// deriveScale recomputes the shared step from the stored bounds; it is the
// one place the scale is defined, so a quantizer reconstructed from
// persisted bounds is bit-identical to the trained original.
func (q *Quantizer) deriveScale() {
	var width float32
	for d := range q.Min {
		if w := q.Max[d] - q.Min[d]; w > width {
			width = w
		}
	}
	if width <= 0 {
		// Degenerate training set (all rows identical): any step works
		// because every code and level collapses to zero.
		width = 1
	}
	q.scale = width / 255
	q.invScale = 1 / q.scale
	q.distMul = q.scale * q.scale
}

// Dim returns the trained dimensionality.
func (q *Quantizer) Dim() int { return len(q.Min) }

// Scale returns the shared grid step.
func (q *Quantizer) Scale() float32 { return q.scale }

// DistMul returns the factor (scale²) that converts an int32 accumulated
// level distance into a squared-L2 approximation.
func (q *Quantizer) DistMul() float32 { return q.distMul }

// EncodeInto quantizes v onto the grid, writing one code byte per dimension
// into dst. dst must have length q.Dim().
func (q *Quantizer) EncodeInto(dst []uint8, v []float32) {
	if len(v) != len(q.Min) || len(dst) != len(q.Min) {
		panic(fmt.Sprintf("quant: encode dim mismatch: vec %d, dst %d, quantizer %d", len(v), len(dst), len(q.Min)))
	}
	for d, x := range v {
		// Clamp in float space before converting: a coordinate far outside
		// the trained range (or NaN) would overflow the int32 conversion
		// and land on the wrong end of the grid otherwise. The NaN and -Inf
		// cases fall through to code 0.
		f := (x - q.Min[d]) * q.invScale
		var lv uint8
		switch {
		case f >= 255:
			lv = 255
		case f > 0:
			lv = uint8(int32(f + 0.5))
		}
		dst[d] = lv
	}
}

// Encode quantizes every row of m into a fresh code matrix.
func (q *Quantizer) Encode(m vecmath.Matrix) CodeMatrix {
	c := NewCodeMatrix(m.Rows, m.Dim)
	for i := 0; i < m.Rows; i++ {
		q.EncodeInto(c.Row(i), m.Row(i))
	}
	return c
}

// AppendEncoded grows c by one encoded row — the incremental-insert hook.
func (q *Quantizer) AppendEncoded(c *CodeMatrix, v []float32) {
	c.Codes = append(c.Codes, make([]uint8, c.Dim)...)
	c.Rows++
	q.EncodeInto(c.Row(c.Rows-1), v)
}

// PrepareInto converts a query into grid levels for the asymmetric kernels,
// appending q.Dim() int16 levels to dst (pass a reused buffer truncated to
// [:0]). Levels are rounded like codes but clamped to [−queryPad,
// 255+queryPad] instead of [0,255]: the query keeps sub-range positions
// beyond the trained bounds, which preserves candidate ordering for
// slightly out-of-distribution queries without risking accumulator
// overflow. The int16 representation is what lets the AVX2 kernel process
// 16 dimensions per packed subtract.
func (q *Quantizer) PrepareInto(dst []int16, query []float32) []int16 {
	if len(query) != len(q.Min) {
		panic(fmt.Sprintf("quant: query dim %d != quantizer dim %d", len(query), len(q.Min)))
	}
	for d, x := range query {
		// Clamped in float space, like EncodeInto, so coordinates far
		// outside the trained range (or NaN, which takes the default
		// branch) cannot overflow the int32 conversion and flip ends.
		f := (x - q.Min[d]) * q.invScale
		var lv int32
		switch {
		case f >= 255+queryPad:
			lv = 255 + queryPad
		case f >= 0:
			lv = int32(f + 0.5)
		case f > -queryPad:
			lv = -int32(-f + 0.5)
		default:
			lv = -queryPad
		}
		dst = append(dst, int16(lv))
	}
	return dst
}

// CodeMatrix is the dense row-major uint8 twin of vecmath.Matrix: one code
// byte per dimension, fixed stride Dim, all rows sharing one backing slice
// so gathered rows stay contiguous.
type CodeMatrix struct {
	Codes []uint8 // len == Rows*Dim
	Rows  int
	Dim   int
}

// NewCodeMatrix allocates a zeroed rows×dim code matrix.
func NewCodeMatrix(rows, dim int) CodeMatrix {
	if rows < 0 || dim <= 0 {
		panic(fmt.Sprintf("quant: invalid code matrix shape %dx%d", rows, dim))
	}
	return CodeMatrix{Codes: make([]uint8, rows*dim), Rows: rows, Dim: dim}
}

// Row returns the i-th code row as a subslice of the backing array.
func (c CodeMatrix) Row(i int) []uint8 {
	return c.Codes[i*c.Dim : (i+1)*c.Dim : (i+1)*c.Dim]
}

// Bytes returns the storage footprint of the codes.
func (c CodeMatrix) Bytes() int64 { return int64(len(c.Codes)) }
