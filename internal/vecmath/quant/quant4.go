// Int4 scalar quantization: the SQ8 scheme pushed one rung further down the
// memory-traffic ladder. Every base vector is compressed to half a byte per
// dimension — two dimensions packed per code byte — so a graph expansion
// gathers 8x fewer vector bytes than float32 and 2x fewer than SQ8. PR 4
// measured that bytes/hop, not arithmetic, is what prices traversal at
// serving scale; int4 attacks exactly that term while the caller's exact
// float32 rerank keeps returned distances exact.
//
// The scheme mirrors SQ8 point for point: per-dimension Min offsets, one
// shared step sized so the widest dimension spans all 16 levels, asymmetric
// search (codes are 4-bit, the prepared query keeps int16 levels that may
// sit a little outside [0,15]), and pure int32 accumulation so the AVX2
// kernel is bit-identical to the scalar one. The coarser grid costs recall
// per candidate, which the two-phase search pays back with a slightly
// deeper pool — the rerank repairs ordering, the codes only price pool
// membership.
package quant

import (
	"fmt"

	"repro/internal/vecmath"
)

// Mode names a quantization scheme for the layers above (core, persistence,
// serving) that must dispatch between them without caring about kernels.
type Mode uint8

const (
	ModeNone Mode = iota // uncompressed float32 serving
	ModeSQ8              // one code byte per dimension (Quantizer)
	ModeInt4             // two dimensions per code byte (Quantizer4)
)

// String returns the serving-facing name of the mode, the vocabulary the
// nsgserve /stats endpoint and the bench variant labels share.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "float32"
	case ModeSQ8:
		return "sq8"
	case ModeInt4:
		return "int4"
	}
	return fmt.Sprintf("quant.Mode(%d)", uint8(m))
}

// queryPad4 is the int4 twin of queryPad: how far outside the trained
// [0,15] range a prepared query level may sit before clamping. The pad is
// scaled to the grid (8 levels ≈ half the range, like 128 for SQ8) so
// out-of-distribution queries keep their ordering near the trained region
// while the worst-case per-dimension difference stays bounded.
const queryPad4 = 8

// MaxDim4 is the largest dimension the int32 accumulation supports for
// int4: (15+queryPad4)² per dimension summed over MaxDim4 dimensions stays
// below 2³¹−1. The coarser grid makes this bound ~16x looser than SQ8's.
const MaxDim4 = (1<<31 - 1) / ((15 + queryPad4) * (15 + queryPad4))

// Quantizer4 holds a trained int4 grid: per-dimension bounds and the shared
// step derived from the widest dimension, exactly as Quantizer does with a
// 16-level grid instead of 256. The zero value is not usable; obtain one
// from Train4 or ReadQuantizer4.
type Quantizer4 struct {
	Min []float32 // per-dimension lower bound (grid offset)
	Max []float32 // per-dimension upper bound (training only; step derives from the widest span)

	scale    float32 // shared grid step: widest span / 15
	invScale float32
	distMul  float32 // scale², folded once into every distance
}

// Train4 fits the 16-level grid to the rows of m: per-dimension min/max in
// one pass, then a shared step sized so the widest dimension spans all 16
// levels. Training is order-invariant, so a quantizer trained on the full
// dataset can be shared by every shard of a partitioned index.
func Train4(m vecmath.Matrix) Quantizer4 {
	if m.Rows == 0 || m.Dim == 0 {
		panic("quant: cannot train on an empty matrix")
	}
	if m.Dim > MaxDim4 {
		panic(fmt.Sprintf("quant: dimension %d exceeds the int4 accumulation limit %d", m.Dim, MaxDim4))
	}
	q := Quantizer4{Min: make([]float32, m.Dim), Max: make([]float32, m.Dim)}
	copy(q.Min, m.Row(0))
	copy(q.Max, m.Row(0))
	for i := 1; i < m.Rows; i++ {
		row := m.Row(i)
		for d, v := range row {
			if v < q.Min[d] {
				q.Min[d] = v
			}
			if v > q.Max[d] {
				q.Max[d] = v
			}
		}
	}
	q.deriveScale()
	return q
}

// FromBounds4 reconstructs a quantizer from persisted per-dimension bounds.
// The scale is re-derived by the same deriveScale that training uses, so
// the result is bit-identical to the originally trained quantizer — the
// heap/mapped parity property.
func FromBounds4(min, max []float32) Quantizer4 {
	if len(min) != len(max) || len(min) == 0 {
		panic(fmt.Sprintf("quant: bounds lengths %d/%d invalid", len(min), len(max)))
	}
	q := Quantizer4{Min: min, Max: max}
	q.deriveScale()
	return q
}

// deriveScale recomputes the shared step from the stored bounds; the one
// place the int4 scale is defined, so persisted bounds round-trip
// bit-identically.
func (q *Quantizer4) deriveScale() {
	var width float32
	for d := range q.Min {
		if w := q.Max[d] - q.Min[d]; w > width {
			width = w
		}
	}
	if width <= 0 {
		// Degenerate training set (all rows identical): any step works
		// because every code and level collapses to zero.
		width = 1
	}
	q.scale = width / 15
	q.invScale = 1 / q.scale
	q.distMul = q.scale * q.scale
}

// Dim returns the trained dimensionality.
func (q *Quantizer4) Dim() int { return len(q.Min) }

// Scale returns the shared grid step.
func (q *Quantizer4) Scale() float32 { return q.scale }

// DistMul returns the factor (scale²) that converts an int32 accumulated
// level distance into a squared-L2 approximation.
func (q *Quantizer4) DistMul() float32 { return q.distMul }

// EncodeInto quantizes v onto the grid, packing two 4-bit codes per byte
// into dst: dimension 2i in the low nibble of dst[i], dimension 2i+1 in the
// high nibble. dst must have length Stride4(q.Dim()); for odd dimensions
// the final high nibble is written as zero so encoded rows are
// byte-reproducible.
func (q *Quantizer4) EncodeInto(dst []uint8, v []float32) {
	dim := len(q.Min)
	if len(v) != dim || len(dst) != Stride4(dim) {
		panic(fmt.Sprintf("quant: encode dim mismatch: vec %d, dst %d, quantizer %d", len(v), len(dst), dim))
	}
	for i := range dst {
		b := q.encodeDim(v, 2*i)
		if d := 2*i + 1; d < dim {
			b |= q.encodeDim(v, d) << 4
		}
		dst[i] = b
	}
}

// encodeDim maps one coordinate onto the 16-level grid with the same
// float-space clamping as the SQ8 encoder: values far outside the trained
// range (or NaN/-Inf, which take the default branch) cannot overflow the
// int32 conversion or flip ends.
func (q *Quantizer4) encodeDim(v []float32, d int) uint8 {
	f := (v[d] - q.Min[d]) * q.invScale
	switch {
	case f >= 15:
		return 15
	case f > 0:
		return uint8(int32(f + 0.5))
	}
	return 0
}

// Encode quantizes every row of m into a fresh packed code matrix.
func (q *Quantizer4) Encode(m vecmath.Matrix) Code4Matrix {
	c := NewCode4Matrix(m.Rows, m.Dim)
	for i := 0; i < m.Rows; i++ {
		q.EncodeInto(c.Row(i), m.Row(i))
	}
	return c
}

// AppendEncoded grows c by one encoded row — the incremental-insert hook.
func (q *Quantizer4) AppendEncoded(c *Code4Matrix, v []float32) {
	c.Codes = append(c.Codes, make([]uint8, c.Stride)...)
	c.Rows++
	q.EncodeInto(c.Row(c.Rows-1), v)
}

// PrepareInto converts a query into grid levels for the asymmetric kernels,
// appending q.Dim() int16 levels to dst (pass a reused buffer truncated to
// [:0]) — one level per dimension, unpacked, exactly like the SQ8
// preparation. Levels are rounded like codes but clamped to [−queryPad4,
// 15+queryPad4] instead of [0,15], preserving candidate ordering for
// slightly out-of-distribution queries without risking accumulator
// overflow.
func (q *Quantizer4) PrepareInto(dst []int16, query []float32) []int16 {
	if len(query) != len(q.Min) {
		panic(fmt.Sprintf("quant: query dim %d != quantizer dim %d", len(query), len(q.Min)))
	}
	for d, x := range query {
		// Clamped in float space, like EncodeInto, so coordinates far
		// outside the trained range (or NaN, which takes the default
		// branch) cannot overflow the int32 conversion and flip ends.
		f := (x - q.Min[d]) * q.invScale
		var lv int32
		switch {
		case f >= 15+queryPad4:
			lv = 15 + queryPad4
		case f >= 0:
			lv = int32(f + 0.5)
		case f > -queryPad4:
			lv = -int32(-f + 0.5)
		default:
			lv = -queryPad4
		}
		dst = append(dst, int16(lv))
	}
	return dst
}

// Stride4 returns the packed row width in bytes for a given dimension: two
// dimensions per byte, odd dimensions padded by one zero nibble.
func Stride4(dim int) int { return (dim + 1) / 2 }

// Code4Matrix is the packed int4 twin of CodeMatrix: two 4-bit codes per
// byte at a fixed row stride of (Dim+1)/2 bytes, all rows sharing one
// backing slice so gathered rows stay contiguous. Dimension d of row i
// lives in the low (d even) or high (d odd) nibble of byte i*Stride + d/2.
type Code4Matrix struct {
	Codes  []uint8 // len == Rows*Stride
	Rows   int
	Dim    int
	Stride int // packed row width: (Dim+1)/2
}

// NewCode4Matrix allocates a zeroed rows×dim packed code matrix.
func NewCode4Matrix(rows, dim int) Code4Matrix {
	if rows < 0 || dim <= 0 {
		panic(fmt.Sprintf("quant: invalid code matrix shape %dx%d", rows, dim))
	}
	stride := Stride4(dim)
	return Code4Matrix{Codes: make([]uint8, rows*stride), Rows: rows, Dim: dim, Stride: stride}
}

// Row returns the i-th packed code row as a subslice of the backing array.
func (c Code4Matrix) Row(i int) []uint8 {
	return c.Codes[i*c.Stride : (i+1)*c.Stride : (i+1)*c.Stride]
}

// Bytes returns the storage footprint of the codes.
func (c Code4Matrix) Bytes() int64 { return int64(len(c.Codes)) }
