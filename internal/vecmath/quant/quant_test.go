package quant

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

func randMatrix(rows, dim int, seed int64) vecmath.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vecmath.NewMatrix(rows, dim)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*200 - 100
	}
	return m
}

// TestTrainBounds checks the per-dimension min/max cover every row.
func TestTrainBounds(t *testing.T) {
	m := randMatrix(500, 33, 1)
	q := Train(m)
	for i := 0; i < m.Rows; i++ {
		for d, v := range m.Row(i) {
			if v < q.Min[d] || v > q.Max[d] {
				t.Fatalf("row %d dim %d: value %g outside trained [%g,%g]", i, d, v, q.Min[d], q.Max[d])
			}
		}
	}
	if q.Scale() <= 0 {
		t.Fatalf("non-positive scale %g", q.Scale())
	}
}

// TestEncodeReconstructionError: decoding a code must land within half a
// grid step of the original value in every dimension.
func TestEncodeReconstructionError(t *testing.T) {
	m := randMatrix(300, 48, 2)
	q := Train(m)
	c := q.Encode(m)
	half := q.Scale() / 2 * 1.0001 // float slack on the exact bound
	for i := 0; i < m.Rows; i++ {
		row, code := m.Row(i), c.Row(i)
		for d := range row {
			rec := q.Min[d] + float32(code[d])*q.Scale()
			if diff := float64(rec - row[d]); math.Abs(diff) > float64(half) {
				t.Fatalf("row %d dim %d: reconstruction error %g exceeds scale/2=%g", i, d, diff, half)
			}
		}
	}
}

// TestQuantizedDistanceApproximation: the asymmetric code distance must
// track the exact squared distance within the quantization error bound.
func TestQuantizedDistanceApproximation(t *testing.T) {
	m := randMatrix(400, 64, 3)
	q := Train(m)
	c := q.Encode(m)
	queries := randMatrix(20, 64, 4)
	var levels []int16
	for qi := 0; qi < queries.Rows; qi++ {
		qv := queries.Row(qi)
		levels = q.PrepareInto(levels[:0], qv)
		for i := 0; i < m.Rows; i++ {
			exact := float64(vecmath.L2(qv, m.Row(i)))
			approx := float64(q.L2(levels, c, int32(i)))
			// Per-dimension error is at most one grid step (query and code
			// each round by up to half a step); the cross terms bound the
			// squared-distance error by scale²·dim + 2·scale·√dim·√exact.
			dim := float64(m.Dim)
			s := float64(q.Scale())
			bound := s*s*dim + 2*s*math.Sqrt(dim)*math.Sqrt(exact) + 1e-3
			if math.Abs(exact-approx) > bound {
				t.Fatalf("query %d row %d: |%g - %g| = %g exceeds bound %g",
					qi, i, exact, approx, math.Abs(exact-approx), bound)
			}
		}
	}
}

// TestEncodeExtremeValues: coordinates far outside the trained range (and
// NaN/±Inf) must clamp to the *correct* end of the grid — a naive
// float→int32 conversion overflows to MinInt32 and lands on the wrong end.
func TestEncodeExtremeValues(t *testing.T) {
	m := randMatrix(50, 4, 20) // trained roughly on [-100, 100]
	q := Train(m)
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		v     []float32
		code  []uint8
		level []int16
	}{
		{[]float32{1e30, -1e30, inf, -inf},
			[]uint8{255, 0, 255, 0},
			[]int16{255 + queryPad, -queryPad, 255 + queryPad, -queryPad}},
		{[]float32{nan, nan, -1e30, 1e30}, // NaN → low end, deterministic
			[]uint8{0, 0, 0, 255},
			[]int16{-queryPad, -queryPad, -queryPad, 255 + queryPad}},
	}
	for ci, c := range cases {
		code := make([]uint8, 4)
		q.EncodeInto(code, c.v)
		for d := range code {
			if c.code != nil && code[d] != c.code[d] {
				t.Errorf("case %d dim %d: code %d, want %d", ci, d, code[d], c.code[d])
			}
		}
		levels := q.PrepareInto(nil, c.v)
		for d, lv := range levels {
			if c.level != nil && lv != c.level[d] {
				t.Errorf("case %d dim %d: level %d, want %d", ci, d, lv, c.level[d])
			}
			if lv < -queryPad || lv > 255+queryPad {
				t.Errorf("case %d dim %d: level %d outside [-%d, %d]", ci, d, lv, queryPad, 255+queryPad)
			}
		}
	}
}

// TestKernelParity: the dispatched kernel (AVX2 on amd64) must be
// bit-identical to the portable scalar loop across dimensions, including
// every tail length and out-of-range query levels.
func TestKernelParity(t *testing.T) {
	t.Logf("useAVX2=%v", useAVX2)
	rng := rand.New(rand.NewSource(7))
	for dim := 1; dim <= 200; dim++ {
		levels := make([]int16, dim)
		code := make([]uint8, dim)
		for i := range levels {
			levels[i] = int16(rng.Intn(255+2*queryPad+1) - queryPad) // full prepared range
			code[i] = uint8(rng.Intn(256))
		}
		want := l2LevelsGeneric(levels, code)
		if got := L2Levels(levels, code); got != want {
			t.Fatalf("dim %d: dispatched kernel %d != generic %d", dim, got, want)
		}
	}
}

// TestKernelWorstCase pins the int32 overflow headroom: the maximum
// per-dimension difference at the maximum supported dimension must not wrap.
func TestKernelWorstCase(t *testing.T) {
	dim := MaxDim
	levels := make([]int16, dim)
	code := make([]uint8, dim)
	for i := range levels {
		levels[i] = 255 + queryPad
		code[i] = 0
	}
	want := int64(255+queryPad) * int64(255+queryPad) * int64(dim)
	if want > math.MaxInt32 {
		t.Fatalf("MaxDim %d admits int32 overflow: %d", dim, want)
	}
	if got := L2Levels(levels, code); int64(got) != want {
		t.Fatalf("worst case sum %d != %d", got, want)
	}
	if useAVX2 {
		if got := l2LevelsGeneric(levels, code); int64(got) != want {
			t.Fatalf("generic worst case sum %d != %d", got, want)
		}
	}
}

// TestL2ToRows: the batched gather must match per-row kernel calls, and the
// counter twin must count one evaluation per row.
func TestL2ToRows(t *testing.T) {
	m := randMatrix(200, 31, 5)
	q := Train(m)
	c := q.Encode(m)
	levels := q.PrepareInto(nil, randMatrix(1, 31, 6).Row(0))
	ids := []int32{3, 17, 0, 199, 42, 42}
	out := make([]float32, len(ids))
	var counter vecmath.Counter
	q.L2ToRowsCount(&counter, c, levels, ids, out)
	for i, id := range ids {
		if want := q.L2(levels, c, id); out[i] != want {
			t.Fatalf("row %d: gather %g != direct %g", id, out[i], want)
		}
	}
	if counter.Count() != uint64(len(ids)) {
		t.Fatalf("counter recorded %d evaluations, want %d", counter.Count(), len(ids))
	}
	var nilCounter *vecmath.Counter
	q.L2ToRowsCount(nilCounter, c, levels, ids, out) // must not panic
}

// TestAppendEncoded grows the code matrix one row at a time.
func TestAppendEncoded(t *testing.T) {
	m := randMatrix(10, 16, 8)
	q := Train(m)
	c := q.Encode(vecmath.Matrix{Data: m.Data[:5*16], Rows: 5, Dim: 16})
	for i := 5; i < 10; i++ {
		q.AppendEncoded(&c, m.Row(i))
	}
	full := q.Encode(m)
	if !bytes.Equal(c.Codes, full.Codes) || c.Rows != full.Rows {
		t.Fatal("incrementally appended codes differ from batch encode")
	}
}

// TestDegenerateTraining: a constant dataset must train, encode to zeros,
// and report zero distances for the matching query.
func TestDegenerateTraining(t *testing.T) {
	m := vecmath.NewMatrix(10, 8)
	for i := range m.Data {
		m.Data[i] = 3.5
	}
	q := Train(m)
	c := q.Encode(m)
	for _, b := range c.Codes {
		if b != 0 {
			t.Fatalf("constant data encoded to nonzero code %d", b)
		}
	}
	levels := q.PrepareInto(nil, m.Row(0))
	if d := q.L2(levels, c, 0); d != 0 {
		t.Fatalf("self distance %g != 0 on constant data", d)
	}
}

// TestPersistRoundTrip: quantizer and codes must survive Write/Read
// byte-identically, including the re-derived scale.
func TestPersistRoundTrip(t *testing.T) {
	m := randMatrix(137, 50, 9)
	q := Train(m)
	c := q.Encode(m)
	var buf bytes.Buffer
	if err := WriteQuantizer(&buf, &q); err != nil {
		t.Fatal(err)
	}
	if err := WriteCodes(&buf, c); err != nil {
		t.Fatal(err)
	}
	q2, err := ReadQuantizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for d := range q.Min {
		if q.Min[d] != q2.Min[d] || q.Max[d] != q2.Max[d] {
			t.Fatalf("dim %d: bounds changed across persist", d)
		}
	}
	if q.Scale() != q2.Scale() || q.DistMul() != q2.DistMul() {
		t.Fatalf("scale changed across persist: %g vs %g", q.Scale(), q2.Scale())
	}
	if !bytes.Equal(c.Codes, c2.Codes) || c.Rows != c2.Rows || c.Dim != c2.Dim {
		t.Fatal("codes changed across persist")
	}
	if buf.Len() != 0 {
		t.Fatalf("%d unread bytes after round trip", buf.Len())
	}
}

// TestPersistRejectsGarbage: wrong magics must error, not misparse.
func TestPersistRejectsGarbage(t *testing.T) {
	if _, err := ReadQuantizer(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("ReadQuantizer accepted zero bytes")
	}
	if _, err := ReadCodes(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("ReadCodes accepted zero bytes")
	}
}

// TestL2RowsToQueries: the multi-query block must be bit-identical to the
// single-query gather for every (query, row) pair, across dimensions — so
// both the AVX2 and the generic L2Levels dispatch are covered (the CI
// NSG_NO_AVX2 lane reruns this on the scalar path).
func TestL2RowsToQueries(t *testing.T) {
	for dim := 1; dim <= 200; dim += 7 {
		m := randMatrix(24, dim, int64(dim))
		q := Train(m)
		c := q.Encode(m)
		queries := randMatrix(4, dim, int64(dim)+500)
		var levels []int16
		for r := 0; r < queries.Rows; r++ {
			levels = q.PrepareInto(levels, queries.Row(r))
		}
		ids := []int32{3, 0, 23, 9, 9}
		out := make([]float32, queries.Rows*len(ids))
		var counter vecmath.Counter
		q.L2RowsToQueriesCount(&counter, c, levels, queries.Rows, ids, out)
		for r := 0; r < queries.Rows; r++ {
			lv := levels[r*dim : (r+1)*dim]
			for i, id := range ids {
				if got, want := out[r*len(ids)+i], q.L2(lv, c, id); got != want {
					t.Fatalf("dim %d query %d row %d: block %g != direct %g", dim, r, id, got, want)
				}
			}
		}
		if want := uint64(queries.Rows * len(ids)); counter.Count() != want {
			t.Fatalf("dim %d: counter recorded %d evaluations, want %d", dim, counter.Count(), want)
		}
	}
	// The uncounted entry point and a nil counter must both work.
	m := randMatrix(8, 16, 99)
	q := Train(m)
	c := q.Encode(m)
	levels := q.PrepareInto(nil, randMatrix(1, 16, 100).Row(0))
	out := make([]float32, 2)
	q.L2RowsToQueries(c, levels, 1, []int32{1, 5}, out)
	var nilCounter *vecmath.Counter
	q.L2RowsToQueriesCount(nilCounter, c, levels, 1, []int32{1, 5}, out)
	for i, id := range []int32{1, 5} {
		if want := q.L2(levels, c, id); out[i] != want {
			t.Fatalf("row %d: %g != %g", id, out[i], want)
		}
	}
}
