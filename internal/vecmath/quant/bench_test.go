package quant

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// BenchmarkQuantKernel compares one SQ8 and one packed int4 code distance
// against one float32 distance at serving dimensions, plus the portable
// scalar fallbacks — the per-distance view of the 4x and 8x byte shrinks.
func BenchmarkQuantKernel(b *testing.B) {
	for _, dim := range []int{32, 128, 960} {
		rng := rand.New(rand.NewSource(1))
		m := vecmath.NewMatrix(1024, dim)
		for i := range m.Data {
			m.Data[i] = rng.Float32() * 100
		}
		q := Train(m)
		c := q.Encode(m)
		levels := q.PrepareInto(nil, m.Row(0))
		q4 := Train4(m)
		c4 := q4.Encode(m)
		levels4 := q4.PrepareInto(nil, m.Row(0))
		b.Run(fmt.Sprintf("dim=%d/float32", dim), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += vecmath.L2(m.Row(0), m.Row(i&1023))
			}
			_ = s
		})
		b.Run(fmt.Sprintf("dim=%d/sq8", dim), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += L2Levels(levels, c.Row(i&1023))
			}
			_ = s
		})
		b.Run(fmt.Sprintf("dim=%d/sq8-generic", dim), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += l2LevelsGeneric(levels, c.Row(i&1023))
			}
			_ = s
		})
		b.Run(fmt.Sprintf("dim=%d/int4", dim), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += L2Levels4(levels4, c4.Row(i&1023))
			}
			_ = s
		})
		b.Run(fmt.Sprintf("dim=%d/int4-generic", dim), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += l2Levels4Generic(levels4, c4.Row(i&1023))
			}
			_ = s
		})
	}
}

// BenchmarkQuantGather measures the batched L2ToRows gather the search
// expansion loop calls, at a typical out-degree.
func BenchmarkQuantGather(b *testing.B) {
	const dim, rows, fan = 128, 8192, 30
	rng := rand.New(rand.NewSource(1))
	m := vecmath.NewMatrix(rows, dim)
	for i := range m.Data {
		m.Data[i] = rng.Float32() * 100
	}
	q := Train(m)
	c := q.Encode(m)
	levels := q.PrepareInto(nil, m.Row(0))
	ids := make([]int32, fan)
	for i := range ids {
		ids[i] = int32(rng.Intn(rows))
	}
	q4 := Train4(m)
	c4 := q4.Encode(m)
	levels4 := q4.PrepareInto(nil, m.Row(0))
	out := make([]float32, fan)
	b.Run("sq8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q.L2ToRows(c, levels, ids, out)
		}
	})
	b.Run("int4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q4.L2ToRows(c4, levels4, ids, out)
		}
	})
	b.Run("float32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vecmath.L2ToRows(m, m.Row(0), ids, out)
		}
	})
}

// BenchmarkQuantEncode prices training and encoding, the one-time build
// cost the serving win pays for.
func BenchmarkQuantEncode(b *testing.B) {
	const dim, rows = 128, 8192
	rng := rand.New(rand.NewSource(1))
	m := vecmath.NewMatrix(rows, dim)
	for i := range m.Data {
		m.Data[i] = rng.Float32() * 100
	}
	b.Run("train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Train(m)
		}
	})
	q := Train(m)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.Encode(m)
		}
	})
}
