package quant

import "repro/internal/vecmath"

// Int4 asymmetric distance kernels: a prepared query (int16 grid levels,
// one per dimension, see Quantizer4.PrepareInto) against packed nibble
// rows, accumulating in int32. The query side stays unpacked — only the
// stored codes pay the packing — so the inner loop is: unpack two nibbles,
// two subtracts, two multiply-accumulates per code byte. The amd64 path
// unpacks 16 code bytes (32 dimensions) per step with VPAND/VPSRLW, widens
// to words, and squares-and-pairs with VPMADDWD; integer arithmetic
// end to end, so the vector path is bit-identical to the scalar one.

// L2Levels4 returns the int32 accumulated squared level distance between a
// prepared query (one int16 level per dimension) and one packed code row.
// Multiply by Quantizer4.DistMul to convert to a squared-L2 approximation.
// code must hold at least Stride4(len(levels)) bytes; for odd lengths the
// final high nibble is ignored.
func L2Levels4(levels []int16, code []uint8) int32 {
	if len(code) < Stride4(len(levels)) {
		panic("quant: packed code row shorter than levels require")
	}
	if useAVX2 && len(levels) >= 32 {
		n := len(levels) &^ 31
		s := l2Levels4AVX2(&levels[0], &code[0], n)
		return s + l2Levels4Tail(levels, code, n)
	}
	return l2Levels4Generic(levels, code)
}

// l2Levels4Generic is the portable scalar kernel: one code byte per
// iteration covers two dimensions, so a single pass already gives the
// 2-wide unroll the SQ8 kernel gets from indexing; two accumulator chains
// keep the integer ALUs busy without spilling addressing registers.
func l2Levels4Generic(levels []int16, code []uint8) int32 {
	var s0, s1 int32
	n := len(levels) &^ 1
	for i := 0; i < n; i += 2 {
		b := code[i>>1]
		d0 := int32(levels[i]) - int32(b&0x0f)
		d1 := int32(levels[i+1]) - int32(b>>4)
		s0 += d0 * d0
		s1 += d1 * d1
	}
	s := s0 + s1
	if n < len(levels) { // odd dimension: low nibble only, pad nibble unused
		d := int32(levels[n]) - int32(code[n>>1]&0x0f)
		s += d * d
	}
	return s
}

// l2Levels4Tail finishes the dimensions the 32-wide vector body left
// behind, starting at dimension n (always even, so nibble parity lines up
// with byte boundaries).
func l2Levels4Tail(levels []int16, code []uint8, n int) int32 {
	var s int32
	for i := n; i < len(levels); i++ {
		c := code[i>>1]
		if i&1 == 1 {
			c >>= 4
		}
		d := int32(levels[i]) - int32(c&0x0f)
		s += d * d
	}
	return s
}

// L2 returns the approximate squared L2 distance between a prepared query
// and packed code row i of c.
func (q *Quantizer4) L2(levels []int16, c Code4Matrix, i int32) float32 {
	return float32(L2Levels4(levels, c.Row(int(i)))) * q.distMul
}

// L2ToRows is the batched gather kernel the quantized search loop uses: it
// writes the approximate squared distance from the prepared query to packed
// row ids[i] into out[i] for every i — the int4 twin of Quantizer.L2ToRows.
// out must be at least len(ids) long.
func (q *Quantizer4) L2ToRows(c Code4Matrix, levels []int16, ids []int32, out []float32) {
	if len(out) < len(ids) {
		panic("quant: L2ToRows output shorter than ids")
	}
	stride := c.Stride
	data := c.Codes
	mul := q.distMul
	for i, id := range ids {
		off := int(id) * stride
		out[i] = float32(L2Levels4(levels, data[off:off+stride:off+stride])) * mul
	}
}

// L2ToRowsCount is the Counter-aware twin of L2ToRows: same distances, one
// counter update of len(ids) evaluations. A nil counter is valid and counts
// nothing.
func (q *Quantizer4) L2ToRowsCount(counter *vecmath.Counter, c Code4Matrix, levels []int16, ids []int32, out []float32) {
	counter.AddN(uint64(len(ids)))
	q.L2ToRows(c, levels, ids, out)
}

// L2RowsToQueries is the multi-query gather kernel for fused (cohort)
// search — the int4 twin of Quantizer.L2RowsToQueries. levels holds nq
// prepared queries back to back (nq*q.Dim() int16 values);
// out[qi*len(ids)+i] receives the approximate squared distance from query
// qi to packed row ids[i]. ids-outer / queries-inner, so each gathered code
// row is loaded once and reused by every query, and every pair goes through
// L2Levels4 — the AVX2 dispatch and scalar bit-identity are inherited per
// pair. out must be at least nq*len(ids) long.
func (q *Quantizer4) L2RowsToQueries(c Code4Matrix, levels []int16, nq int, ids []int32, out []float32) {
	if len(out) < nq*len(ids) {
		panic("quant: L2RowsToQueries output shorter than queries x ids")
	}
	dim := c.Dim
	if len(levels) < nq*dim {
		panic("quant: L2RowsToQueries levels shorter than queries x dim")
	}
	stride := c.Stride
	data := c.Codes
	mul := q.distMul
	for i, id := range ids {
		off := int(id) * stride
		row := data[off : off+stride : off+stride]
		for qi := 0; qi < nq; qi++ {
			lv := levels[qi*dim : (qi+1)*dim : (qi+1)*dim]
			out[qi*len(ids)+i] = float32(L2Levels4(lv, row)) * mul
		}
	}
}

// L2RowsToQueriesCount is the Counter-aware twin of L2RowsToQueries: same
// distance block, one counter update of nq*len(ids) evaluations. A nil
// counter is valid and counts nothing.
func (q *Quantizer4) L2RowsToQueriesCount(counter *vecmath.Counter, c Code4Matrix, levels []int16, nq int, ids []int32, out []float32) {
	counter.AddN(uint64(nq) * uint64(len(ids)))
	q.L2RowsToQueries(c, levels, nq, ids, out)
}
