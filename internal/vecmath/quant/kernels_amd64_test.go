//go:build amd64

package quant

import (
	"os"
	"testing"
)

// TestNoAVX2EnvHonored asserts the CI kernel-matrix contract: when
// NSG_NO_AVX2 is set, the package must have dispatched to the scalar
// fallback at init. The CI lane that force-disables the vector path runs
// the whole test suite with the variable set; this test is what proves the
// kill-switch actually took, rather than the lane silently re-testing the
// AVX2 path.
func TestNoAVX2EnvHonored(t *testing.T) {
	if os.Getenv("NSG_NO_AVX2") == "" {
		t.Skip("NSG_NO_AVX2 not set; dispatch follows hardware")
	}
	if useAVX2 {
		t.Fatal("NSG_NO_AVX2 is set but the AVX2 kernel is still dispatched")
	}
}
