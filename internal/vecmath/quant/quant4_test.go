package quant

// The int4 twin of quant_test.go: the packed-nibble encoder, the asymmetric
// kernels (dispatched vs scalar bit-identity across every dimension tail),
// the gather twins, extreme-value clamping, degenerate training, and the
// persist round trip.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vecmath"
)

// TestTrain4Bounds checks the per-dimension min/max cover every row.
func TestTrain4Bounds(t *testing.T) {
	m := randMatrix(500, 33, 1)
	q := Train4(m)
	for i := 0; i < m.Rows; i++ {
		for d, v := range m.Row(i) {
			if v < q.Min[d] || v > q.Max[d] {
				t.Fatalf("row %d dim %d: value %g outside trained [%g,%g]", i, d, v, q.Min[d], q.Max[d])
			}
		}
	}
	if q.Scale() <= 0 {
		t.Fatalf("non-positive scale %g", q.Scale())
	}
}

// TestEncode4ReconstructionError: decoding a packed code must land within
// half a (16-level) grid step of the original value in every dimension.
func TestEncode4ReconstructionError(t *testing.T) {
	m := randMatrix(300, 48, 2)
	q := Train4(m)
	c := q.Encode(m)
	half := q.Scale() / 2 * 1.0001 // float slack on the exact bound
	for i := 0; i < m.Rows; i++ {
		row, code := m.Row(i), c.Row(i)
		for d := range row {
			nib := code[d>>1]
			if d&1 == 1 {
				nib >>= 4
			}
			rec := q.Min[d] + float32(nib&0x0f)*q.Scale()
			if diff := float64(rec - row[d]); math.Abs(diff) > float64(half) {
				t.Fatalf("row %d dim %d: reconstruction error %g exceeds scale/2=%g", i, d, diff, half)
			}
		}
	}
}

// TestInt4DistanceApproximation: the asymmetric code distance must track the
// exact squared distance within the (coarser) quantization error bound.
func TestInt4DistanceApproximation(t *testing.T) {
	m := randMatrix(400, 64, 3)
	q := Train4(m)
	c := q.Encode(m)
	queries := randMatrix(20, 64, 4)
	var levels []int16
	for qi := 0; qi < queries.Rows; qi++ {
		qv := queries.Row(qi)
		levels = q.PrepareInto(levels[:0], qv)
		for i := 0; i < m.Rows; i++ {
			exact := float64(vecmath.L2(qv, m.Row(i)))
			approx := float64(q.L2(levels, c, int32(i)))
			// Same error algebra as SQ8, with the 16-level step: per-dimension
			// error at most one grid step, cross terms bound the squared
			// distance by scale²·dim + 2·scale·√dim·√exact.
			dim := float64(m.Dim)
			s := float64(q.Scale())
			bound := s*s*dim + 2*s*math.Sqrt(dim)*math.Sqrt(exact) + 1e-3
			if math.Abs(exact-approx) > bound {
				t.Fatalf("query %d row %d: |%g - %g| = %g exceeds bound %g",
					qi, i, exact, approx, math.Abs(exact-approx), bound)
			}
		}
	}
}

// TestEncode4ExtremeValues: coordinates far outside the trained range (and
// NaN/±Inf) must clamp to the *correct* end of the 16-level grid — a naive
// float→int32 conversion overflows to MinInt32 and lands on the wrong end.
func TestEncode4ExtremeValues(t *testing.T) {
	m := randMatrix(50, 4, 20) // trained roughly on [-100, 100]
	q := Train4(m)
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	cases := []struct {
		v     []float32
		nib   []uint8
		level []int16
	}{
		{[]float32{1e30, -1e30, inf, -inf},
			[]uint8{15, 0, 15, 0},
			[]int16{15 + queryPad4, -queryPad4, 15 + queryPad4, -queryPad4}},
		{[]float32{nan, nan, -1e30, 1e30}, // NaN → low end, deterministic
			[]uint8{0, 0, 0, 15},
			[]int16{-queryPad4, -queryPad4, -queryPad4, 15 + queryPad4}},
	}
	for ci, c := range cases {
		code := make([]uint8, Stride4(4))
		q.EncodeInto(code, c.v)
		for d := 0; d < 4; d++ {
			nib := code[d>>1]
			if d&1 == 1 {
				nib >>= 4
			}
			if nib &= 0x0f; nib != c.nib[d] {
				t.Errorf("case %d dim %d: nibble %d, want %d", ci, d, nib, c.nib[d])
			}
		}
		levels := q.PrepareInto(nil, c.v)
		for d, lv := range levels {
			if lv != c.level[d] {
				t.Errorf("case %d dim %d: level %d, want %d", ci, d, lv, c.level[d])
			}
			if lv < -queryPad4 || lv > 15+queryPad4 {
				t.Errorf("case %d dim %d: level %d outside [-%d, %d]", ci, d, lv, queryPad4, 15+queryPad4)
			}
		}
	}
}

// TestKernel4Parity: the dispatched kernel (AVX2 nibble unpack on amd64)
// must be bit-identical to the portable scalar loop across dimensions 1..200
// — every 32-wide body count, every tail length, odd dimensions included —
// with query levels drawn from the full prepared range.
func TestKernel4Parity(t *testing.T) {
	t.Logf("useAVX2=%v", useAVX2)
	rng := rand.New(rand.NewSource(7))
	for dim := 1; dim <= 200; dim++ {
		levels := make([]int16, dim)
		code := make([]uint8, Stride4(dim))
		for i := range levels {
			levels[i] = int16(rng.Intn(15+2*queryPad4+1) - queryPad4) // full prepared range
		}
		for i := range code {
			code[i] = uint8(rng.Intn(256))
		}
		if dim&1 == 1 {
			code[len(code)-1] &= 0x0f // the encoder writes the pad nibble as 0
		}
		want := l2Levels4Generic(levels, code)
		if got := L2Levels4(levels, code); got != want {
			t.Fatalf("dim %d: dispatched kernel %d != generic %d", dim, got, want)
		}
	}
}

// TestKernel4WorstCase pins the int32 overflow headroom: the maximum
// per-dimension difference at the maximum supported dimension must not wrap.
func TestKernel4WorstCase(t *testing.T) {
	dim := MaxDim4 &^ 1 // even, so the packed row has no pad nibble
	levels := make([]int16, dim)
	code := make([]uint8, Stride4(dim)) // all-zero nibbles
	for i := range levels {
		levels[i] = 15 + queryPad4
	}
	want := int64(15+queryPad4) * int64(15+queryPad4) * int64(dim)
	if full := want / int64(dim) * int64(MaxDim4); full > math.MaxInt32 {
		t.Fatalf("MaxDim4 %d admits int32 overflow: %d", MaxDim4, full)
	}
	if got := L2Levels4(levels, code); int64(got) != want {
		t.Fatalf("worst case sum %d != %d", got, want)
	}
	if useAVX2 {
		if got := l2Levels4Generic(levels, code); int64(got) != want {
			t.Fatalf("generic worst case sum %d != %d", got, want)
		}
	}
}

// TestL2ToRows4: the batched gather must match per-row kernel calls, and
// the counter twin must count one evaluation per row.
func TestL2ToRows4(t *testing.T) {
	m := randMatrix(200, 31, 5)
	q := Train4(m)
	c := q.Encode(m)
	levels := q.PrepareInto(nil, randMatrix(1, 31, 6).Row(0))
	ids := []int32{3, 17, 0, 199, 42, 42}
	out := make([]float32, len(ids))
	var counter vecmath.Counter
	q.L2ToRowsCount(&counter, c, levels, ids, out)
	for i, id := range ids {
		if want := q.L2(levels, c, id); out[i] != want {
			t.Fatalf("row %d: gather %g != direct %g", id, out[i], want)
		}
	}
	if counter.Count() != uint64(len(ids)) {
		t.Fatalf("counter recorded %d evaluations, want %d", counter.Count(), len(ids))
	}
	var nilCounter *vecmath.Counter
	q.L2ToRowsCount(nilCounter, c, levels, ids, out) // must not panic
}

// TestL2RowsToQueries4: the multi-query block must be bit-identical to the
// single-query gather for every (query, row) pair, across dimensions — so
// both the AVX2 and the generic L2Levels4 dispatch are covered (the CI
// NSG_NO_AVX2 lane reruns this on the scalar path).
func TestL2RowsToQueries4(t *testing.T) {
	for dim := 1; dim <= 200; dim += 7 {
		m := randMatrix(24, dim, int64(dim))
		q := Train4(m)
		c := q.Encode(m)
		queries := randMatrix(4, dim, int64(dim)+500)
		var levels []int16
		for r := 0; r < queries.Rows; r++ {
			levels = q.PrepareInto(levels, queries.Row(r))
		}
		ids := []int32{3, 0, 23, 9, 9}
		out := make([]float32, queries.Rows*len(ids))
		var counter vecmath.Counter
		q.L2RowsToQueriesCount(&counter, c, levels, queries.Rows, ids, out)
		for r := 0; r < queries.Rows; r++ {
			lv := levels[r*dim : (r+1)*dim]
			for i, id := range ids {
				if got, want := out[r*len(ids)+i], q.L2(lv, c, id); got != want {
					t.Fatalf("dim %d query %d row %d: block %g != direct %g", dim, r, id, got, want)
				}
			}
		}
		if want := uint64(queries.Rows * len(ids)); counter.Count() != want {
			t.Fatalf("dim %d: counter recorded %d evaluations, want %d", dim, counter.Count(), want)
		}
	}
	// The uncounted entry point and a nil counter must both work.
	m := randMatrix(8, 16, 99)
	q := Train4(m)
	c := q.Encode(m)
	levels := q.PrepareInto(nil, randMatrix(1, 16, 100).Row(0))
	out := make([]float32, 2)
	q.L2RowsToQueries(c, levels, 1, []int32{1, 5}, out)
	var nilCounter *vecmath.Counter
	q.L2RowsToQueriesCount(nilCounter, c, levels, 1, []int32{1, 5}, out)
	for i, id := range []int32{1, 5} {
		if want := q.L2(levels, c, id); out[i] != want {
			t.Fatalf("row %d: %g != %g", id, out[i], want)
		}
	}
}

// TestAppendEncoded4 grows the packed code matrix one row at a time.
func TestAppendEncoded4(t *testing.T) {
	m := randMatrix(10, 17, 8) // odd dimension: pad nibble in every row
	q := Train4(m)
	c := q.Encode(vecmath.Matrix{Data: m.Data[:5*17], Rows: 5, Dim: 17})
	for i := 5; i < 10; i++ {
		q.AppendEncoded(&c, m.Row(i))
	}
	full := q.Encode(m)
	if !bytes.Equal(c.Codes, full.Codes) || c.Rows != full.Rows {
		t.Fatal("incrementally appended codes differ from batch encode")
	}
}

// TestOddDimPadNibble: for odd dimensions the final high nibble must encode
// as zero, so rows are byte-reproducible and the slab hashes stably.
func TestOddDimPadNibble(t *testing.T) {
	m := randMatrix(40, 9, 11)
	q := Train4(m)
	c := q.Encode(m)
	if c.Stride != Stride4(9) || c.Stride != 5 {
		t.Fatalf("stride %d, want 5", c.Stride)
	}
	for i := 0; i < c.Rows; i++ {
		row := c.Row(i)
		if row[len(row)-1]>>4 != 0 {
			t.Fatalf("row %d: pad nibble %d != 0", i, row[len(row)-1]>>4)
		}
	}
}

// TestDegenerateTraining4: a constant dataset must train, encode to zeros,
// and report zero distances for the matching query.
func TestDegenerateTraining4(t *testing.T) {
	m := vecmath.NewMatrix(10, 8)
	for i := range m.Data {
		m.Data[i] = 3.5
	}
	q := Train4(m)
	c := q.Encode(m)
	for _, b := range c.Codes {
		if b != 0 {
			t.Fatalf("constant data encoded to nonzero code byte %d", b)
		}
	}
	levels := q.PrepareInto(nil, m.Row(0))
	if d := q.L2(levels, c, 0); d != 0 {
		t.Fatalf("self distance %g != 0 on constant data", d)
	}
}

// TestPersist4RoundTrip: quantizer and packed codes must survive Write/Read
// byte-identically, including the re-derived scale.
func TestPersist4RoundTrip(t *testing.T) {
	m := randMatrix(137, 51, 9) // odd dimension: stride with pad nibble
	q := Train4(m)
	c := q.Encode(m)
	var buf bytes.Buffer
	if err := WriteQuantizer4(&buf, &q); err != nil {
		t.Fatal(err)
	}
	if err := WriteCodes4(&buf, c); err != nil {
		t.Fatal(err)
	}
	q2, err := ReadQuantizer4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCodes4Shape(&buf, c.Rows, c.Dim)
	if err != nil {
		t.Fatal(err)
	}
	for d := range q.Min {
		if q.Min[d] != q2.Min[d] || q.Max[d] != q2.Max[d] {
			t.Fatalf("dim %d: bounds changed across persist", d)
		}
	}
	if q.Scale() != q2.Scale() || q.DistMul() != q2.DistMul() {
		t.Fatalf("scale changed across persist: %g vs %g", q.Scale(), q2.Scale())
	}
	if !bytes.Equal(c.Codes, c2.Codes) || c.Rows != c2.Rows || c.Dim != c2.Dim || c.Stride != c2.Stride {
		t.Fatal("codes changed across persist")
	}
	if buf.Len() != 0 {
		t.Fatalf("%d unread bytes after round trip", buf.Len())
	}
}

// TestPersist4RejectsGarbage: wrong magics and mismatched shapes must
// error, not misparse — including the SQ8 magics, which must not alias.
func TestPersist4RejectsGarbage(t *testing.T) {
	if _, err := ReadQuantizer4(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("ReadQuantizer4 accepted zero bytes")
	}
	if _, err := ReadCodes4Shape(bytes.NewReader(make([]byte, 64)), -1, -1); err == nil {
		t.Fatal("ReadCodes4Shape accepted zero bytes")
	}
	m := randMatrix(6, 8, 12)
	q := Train4(m)
	c := q.Encode(m)
	var buf bytes.Buffer
	if err := WriteQuantizer4(&buf, &q); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadQuantizer(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("SQ8 reader accepted an int4 quantizer record")
	}
	buf.Reset()
	if err := WriteCodes4(&buf, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCodes(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("SQ8 reader accepted an int4 codes record")
	}
	if _, err := ReadCodes4Shape(bytes.NewReader(buf.Bytes()), c.Rows+1, c.Dim); err == nil {
		t.Fatal("ReadCodes4Shape accepted a mismatched row count")
	}
}
