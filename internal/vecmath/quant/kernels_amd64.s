//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func l2Levels16AVX2(levels *int16, code *uint8, n int) int32
//
// Sums (levels[i] - code[i])^2 for i in [0, n), n a multiple of 16.
// Per 16 lanes: widen 16 code bytes to words (VPMOVZXBW), packed word
// subtract, then VPMADDWD squares each 16-bit diff and sums adjacent pairs
// into 8 int32 lanes — diffs are bounded by ±(255+queryPad), so the pair
// sums and the per-lane accumulation stay far below int32 overflow for
// every dimension up to MaxDim. The main loop handles 32 lanes with two
// independent accumulator chains.
TEXT ·l2Levels16AVX2(SB), NOSPLIT, $0-28
	MOVQ levels+0(FP), SI
	MOVQ code+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR Y0, Y0, Y0              // accumulator A
	VPXOR Y4, Y4, Y4              // accumulator B

loop32:
	CMPQ CX, $32
	JL   loop16
	VPMOVZXBW (DI), Y1            // 16 code bytes -> 16 words
	VMOVDQU   (SI), Y2            // 16 level words
	VPSUBW    Y1, Y2, Y3          // levels - code
	VPMADDWD  Y3, Y3, Y3          // pairwise d^2 sums -> 8 dwords
	VPADDD    Y3, Y0, Y0
	VPMOVZXBW 16(DI), Y5
	VMOVDQU   32(SI), Y6
	VPSUBW    Y5, Y6, Y7
	VPMADDWD  Y7, Y7, Y7
	VPADDD    Y7, Y4, Y4
	ADDQ $32, DI
	ADDQ $64, SI
	SUBQ $32, CX
	JMP  loop32

loop16:
	CMPQ CX, $16
	JL   done
	VPMOVZXBW (DI), Y1
	VMOVDQU   (SI), Y2
	VPSUBW    Y1, Y2, Y3
	VPMADDWD  Y3, Y3, Y3
	VPADDD    Y3, Y0, Y0
	ADDQ $16, DI
	ADDQ $32, SI
	SUBQ $16, CX
	JMP  loop16

done:
	VPADDD Y4, Y0, Y0
	// Horizontal sum of the 8 dword lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4E, X0, X1         // swap the two 64-bit halves
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1         // swap the two 32-bit pairs
	VPADDD X1, X0, X0
	VMOVD X0, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET

// func l2Levels4AVX2(levels *int16, code *uint8, n int) int32
//
// Packed-nibble twin of l2Levels16AVX2: sums (levels[i] - nibble(code,i))^2
// for i in [0, n), n a multiple of 32 dimensions = 16 code bytes. Each code
// byte packs dimension 2j in its low nibble and 2j+1 in its high nibble
// (Code4Matrix layout), so one 16-byte load covers 32 dimensions:
// VPAND/VPSRLW split the even/odd nibbles into two byte vectors,
// VPUNPCK[LH]BW re-interleaves them into dimension order, VPMOVZXBW widens
// to words, and from there the body is the SQ8 kernel — packed word
// subtract, VPMADDWD pair-squares into int32 lanes, two accumulator
// chains. Diffs are bounded by +/-(15+queryPad4), so every intermediate
// stays far below int32 overflow up to MaxDim4; all-integer arithmetic
// keeps the result bit-identical to the scalar kernel.
TEXT ·l2Levels4AVX2(SB), NOSPLIT, $0-28
	MOVQ levels+0(FP), SI
	MOVQ code+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ $0x0f0f0f0f0f0f0f0f, AX
	MOVQ AX, X8
	VPBROADCASTQ X8, X8           // per-byte nibble mask
	VPXOR Y0, Y0, Y0              // accumulator A (dims 0..15 of each block)
	VPXOR Y9, Y9, Y9              // accumulator B (dims 16..31)

loop32q:
	CMPQ CX, $32
	JL   done4
	VMOVDQU (DI), X1              // 16 packed bytes = 32 dims
	VPSRLW  $4, X1, X2
	VPAND   X8, X1, X1            // even-dim nibbles, one per byte
	VPAND   X8, X2, X2            // odd-dim nibbles, one per byte
	VPUNPCKLBW X2, X1, X3         // interleave -> dims 0..15 in order
	VPUNPCKHBW X2, X1, X4         // dims 16..31
	VPMOVZXBW X3, Y3              // 16 nibble codes -> 16 words
	VMOVDQU (SI), Y5              // 16 level words
	VPSUBW   Y3, Y5, Y5           // levels - code
	VPMADDWD Y5, Y5, Y5           // pairwise d^2 sums -> 8 dwords
	VPADDD   Y5, Y0, Y0
	VPMOVZXBW X4, Y4
	VMOVDQU 32(SI), Y6
	VPSUBW   Y4, Y6, Y6
	VPMADDWD Y6, Y6, Y6
	VPADDD   Y6, Y9, Y9
	ADDQ $16, DI
	ADDQ $64, SI
	SUBQ $32, CX
	JMP  loop32q

done4:
	VPADDD Y9, Y0, Y0
	// Horizontal sum of the 8 dword lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4E, X0, X1         // swap the two 64-bit halves
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1         // swap the two 32-bit pairs
	VPADDD X1, X0, X0
	VMOVD X0, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET
