package quant

import "repro/internal/vecmath"

// Asymmetric distance kernels: a prepared query (int16 grid levels, see
// Quantizer.PrepareInto) against uint8 code rows, accumulating in int32.
// Levels and diffs fit comfortably in 16 bits (levels span [-queryPad,
// 255+queryPad]), which is what lets the amd64 path process 16 dimensions
// per step: widen 16 code bytes to words, one packed subtract, then
// VPMADDWD squares-and-pairs into int32 lanes — integer arithmetic, so the
// vector path is bit-identical to the scalar one. On other architectures
// (or pre-AVX2 hardware) a 4-way unrolled scalar loop runs instead,
// following the style of vecmath.L2.

// L2Levels returns the int32 accumulated squared level distance between a
// prepared query and one code row. Multiply by Quantizer.DistMul to convert
// to a squared-L2 approximation. Panics if the lengths differ.
func L2Levels(levels []int16, code []uint8) int32 {
	if len(levels) != len(code) {
		panic("quant: level/code length mismatch")
	}
	if useAVX2 && len(levels) >= 16 {
		n := len(levels) &^ 15
		s := l2Levels16AVX2(&levels[0], &code[0], n)
		for i := n; i < len(levels); i++ {
			d := int32(levels[i]) - int32(code[i])
			s += d * d
		}
		return s
	}
	return l2LevelsGeneric(levels, code)
}

// l2LevelsGeneric is the portable scalar kernel. Four accumulators (not
// eight, as the float kernels use): integer adds are single-cycle, so four
// chains already saturate the ALUs, and more would spill the general
// registers the loop also needs for addressing.
func l2LevelsGeneric(levels []int16, code []uint8) int32 {
	code = code[:len(levels)]
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(levels); i += 4 {
		d0 := int32(levels[i]) - int32(code[i])
		d1 := int32(levels[i+1]) - int32(code[i+1])
		d2 := int32(levels[i+2]) - int32(code[i+2])
		d3 := int32(levels[i+3]) - int32(code[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(levels); i++ {
		d := int32(levels[i]) - int32(code[i])
		s += d * d
	}
	return s
}

// L2 returns the approximate squared L2 distance between a prepared query
// and code row i of c.
func (q *Quantizer) L2(levels []int16, c CodeMatrix, i int32) float32 {
	return float32(L2Levels(levels, c.Row(int(i)))) * q.distMul
}

// L2ToRows is the batched gather kernel the quantized search loop uses: it
// writes the approximate squared distance from the prepared query to code
// row ids[i] into out[i] for every i — the SQ8 twin of vecmath.L2ToRows.
// out must be at least len(ids) long.
func (q *Quantizer) L2ToRows(c CodeMatrix, levels []int16, ids []int32, out []float32) {
	if len(out) < len(ids) {
		panic("quant: L2ToRows output shorter than ids")
	}
	dim := c.Dim
	data := c.Codes
	mul := q.distMul
	for i, id := range ids {
		off := int(id) * dim
		out[i] = float32(L2Levels(levels, data[off:off+dim:off+dim])) * mul
	}
}

// L2ToRowsCount is the Counter-aware twin of L2ToRows: it computes the same
// distances and records len(ids) distance evaluations in one counter
// update, the same convention the IVFPQ baseline uses for its quantized
// (ADC) scans in the paper's Figure 8 accounting. A nil counter is valid
// and counts nothing.
func (q *Quantizer) L2ToRowsCount(counter *vecmath.Counter, c CodeMatrix, levels []int16, ids []int32, out []float32) {
	counter.AddN(uint64(len(ids)))
	q.L2ToRows(c, levels, ids, out)
}

// L2RowsToQueries is the multi-query gather kernel for fused (cohort)
// search — the SQ8 twin of vecmath.L2RowsToQueries. levels holds nq
// prepared queries back to back (nq*q.Dim() int16 values, each block from
// Quantizer.PrepareInto); out[qi*len(ids)+i] receives the approximate
// squared distance from query qi to code row ids[i]. The loop runs
// ids-outer / queries-inner so each gathered code row is loaded once and
// reused by every query, and each distance goes through L2Levels — so the
// AVX2 dispatch and the bit-identity between the vector and scalar paths
// are inherited per pair. out must be at least nq*len(ids) long.
func (q *Quantizer) L2RowsToQueries(c CodeMatrix, levels []int16, nq int, ids []int32, out []float32) {
	if len(out) < nq*len(ids) {
		panic("quant: L2RowsToQueries output shorter than queries x ids")
	}
	dim := c.Dim
	if len(levels) < nq*dim {
		panic("quant: L2RowsToQueries levels shorter than queries x dim")
	}
	data := c.Codes
	mul := q.distMul
	for i, id := range ids {
		off := int(id) * dim
		row := data[off : off+dim : off+dim]
		for qi := 0; qi < nq; qi++ {
			lv := levels[qi*dim : (qi+1)*dim : (qi+1)*dim]
			out[qi*len(ids)+i] = float32(L2Levels(lv, row)) * mul
		}
	}
}

// L2RowsToQueriesCount is the Counter-aware twin of L2RowsToQueries: same
// distance block, one counter update of nq*len(ids) evaluations (each
// scanned code row counts once per query, matching the solo convention).
// A nil counter is valid and counts nothing.
func (q *Quantizer) L2RowsToQueriesCount(counter *vecmath.Counter, c CodeMatrix, levels []int16, nq int, ids []int32, out []float32) {
	counter.AddN(uint64(nq) * uint64(len(ids)))
	q.L2RowsToQueries(c, levels, nq, ids, out)
}
