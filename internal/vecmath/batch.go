package vecmath

import "fmt"

// Batch distance kernels. The direct kernel recomputes (a_i − b_i)² per
// pair; the decomposed kernel uses ‖q−x‖² = ‖q‖² + ‖x‖² − 2⟨q,x⟩ with
// precomputed row norms, trading one pass of preprocessing for a cheaper
// inner loop — the same trick SIMD implementations and BLAS-backed scans
// use. Both are exposed so the kernel choice can be ablated (the repro_why
// note for this paper calls out distance kernels as the awkward part of a
// Go port).

// RowNorms returns ‖row‖² for every row of m, for use with BatchL2Decomp.
func RowNorms(m Matrix) []float32 {
	out := make([]float32, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		out[i] = Dot(row, row)
	}
	return out
}

// BatchL2 writes the squared distance from q to every row of m into out.
// out must have length m.Rows.
func BatchL2(q []float32, m Matrix, out []float32) {
	if len(out) != m.Rows {
		panic("vecmath: BatchL2 output length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = L2(q, m.Row(i))
	}
}

// BatchL2Decomp writes the squared distance from q to every row of m into
// out using precomputed row norms (from RowNorms). Results can differ from
// BatchL2 in the last float32 bits (different summation order); ordering of
// neighbors is preserved to that tolerance.
func BatchL2Decomp(q []float32, m Matrix, norms, out []float32) {
	if len(out) != m.Rows || len(norms) != m.Rows {
		panic("vecmath: BatchL2Decomp length mismatch")
	}
	qq := Dot(q, q)
	for i := 0; i < m.Rows; i++ {
		d := qq + norms[i] - 2*Dot(q, m.Row(i))
		if d < 0 {
			d = 0 // float cancellation can dip below zero for near-duplicates
		}
		out[i] = d
	}
}

// L2ToRows is the batched gather kernel the construction and search loops
// use: it writes the squared distance from query to base row ids[i] into
// out[i] for every i. One call replaces len(ids) separate L2 calls, keeping
// the candidate-expansion loop free of per-distance call overhead and giving
// a single site to vectorize. Results are bit-identical to calling L2 per
// row. out must be at least len(ids) long.
func L2ToRows(base Matrix, query []float32, ids []int32, out []float32) {
	if len(out) < len(ids) {
		panic("vecmath: L2ToRows output shorter than ids")
	}
	dim := base.Dim
	data := base.Data
	for i, id := range ids {
		off := int(id) * dim
		out[i] = L2(query, data[off:off+dim:off+dim])
	}
}

// L2ToRows is the Counter-aware batched gather kernel: it computes the same
// distances as the package-level L2ToRows and records len(ids) distance
// evaluations in one counter update instead of one per row. A nil receiver
// is valid and counts nothing.
func (c *Counter) L2ToRows(base Matrix, query []float32, ids []int32, out []float32) {
	if c != nil {
		c.n += uint64(len(ids))
	}
	L2ToRows(base, query, ids, out)
}

// L2RowsToQueries is the multi-query gather kernel fused (cohort) search
// uses: out[q*len(ids)+i] = L2(queries.Row(q), base.Row(ids[i])). The loop
// runs ids-outer / queries-inner, so each gathered base row is loaded once
// and reused by every query while it is hot in cache — the traversal-side
// analogue of the bytes-per-hop saving quantization buys. Each distance is
// bit-identical to an individual L2 call. out must be at least
// queries.Rows*len(ids) long; queries.Dim must equal base.Dim.
func L2RowsToQueries(base, queries Matrix, ids []int32, out []float32) {
	nq := queries.Rows
	if len(out) < nq*len(ids) {
		panic("vecmath: L2RowsToQueries output shorter than queries x ids")
	}
	if queries.Dim != base.Dim {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d != %d", queries.Dim, base.Dim))
	}
	dim := base.Dim
	data := base.Data
	for i, id := range ids {
		off := int(id) * dim
		row := data[off : off+dim : off+dim]
		for q := 0; q < nq; q++ {
			out[q*len(ids)+i] = L2(queries.Row(q), row)
		}
	}
}

// L2RowsToQueries is the Counter-aware twin of the package-level kernel: it
// computes the same distance block and records queries.Rows*len(ids)
// distance evaluations in one counter update. A nil receiver is valid and
// counts nothing.
func (c *Counter) L2RowsToQueries(base, queries Matrix, ids []int32, out []float32) {
	if c != nil {
		c.n += uint64(queries.Rows) * uint64(len(ids))
	}
	L2RowsToQueries(base, queries, ids, out)
}
