package vecmath

import "slices"

// Neighbor pairs a point id with its (squared) distance to some query. It is
// the unit of currency between every index and the benchmark harness.
type Neighbor struct {
	ID   int32
	Dist float32
}

// CompareNeighbors is the canonical neighbor ordering used everywhere in
// this repository: ascending by distance, ties broken by id so results are
// deterministic across runs. Every sort of Neighbor slices must go through
// this comparator (directly or via SortNeighbors) so the build pipeline and
// the result paths can never disagree on tie-breaking.
func CompareNeighbors(a, b Neighbor) int {
	switch {
	case a.Dist < b.Dist:
		return -1
	case a.Dist > b.Dist:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// SortNeighbors orders ns by CompareNeighbors. slices.SortFunc keeps the
// call allocation-free, unlike the sort.Slice closure it replaces.
func SortNeighbors(ns []Neighbor) {
	slices.SortFunc(ns, CompareNeighbors)
}

// TopK is a bounded max-heap that keeps the k smallest-distance neighbors
// seen so far. It is the standard structure for brute-force scans and for
// merging shard results.
type TopK struct {
	k    int
	heap []Neighbor // max-heap on Dist
}

// NewTopK returns a collector for the k nearest neighbors. k must be > 0.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vecmath: TopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Reset empties the collector and retargets it to k, reusing the backing
// array so a collector can serve many scans without reallocating. k must be
// > 0.
func (t *TopK) Reset(k int) {
	if k <= 0 {
		panic("vecmath: TopK requires k > 0")
	}
	t.k = k
	if cap(t.heap) < k {
		t.heap = make([]Neighbor, 0, k)
	} else {
		t.heap = t.heap[:0]
	}
}

// Push offers a candidate. It is kept only if fewer than k candidates are
// held or it beats the current worst.
func (t *TopK) Push(id int32, dist float32) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{ID: id, Dist: dist})
		t.up(len(t.heap) - 1)
		return
	}
	if dist >= t.heap[0].Dist {
		return
	}
	t.heap[0] = Neighbor{ID: id, Dist: dist}
	t.down(0)
}

// Worst returns the largest distance currently held, or +Inf semantics via
// ok=false when fewer than k candidates are held.
func (t *TopK) Worst() (float32, bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Dist, true
}

// Len returns the number of candidates currently held.
func (t *TopK) Len() int { return len(t.heap) }

// Result returns the held neighbors sorted ascending by distance. The
// collector is left empty afterwards.
func (t *TopK) Result() []Neighbor {
	out := t.heap
	t.heap = nil
	SortNeighbors(out)
	return out
}

// ResultInto appends the held neighbors, sorted ascending by distance, to
// dst (reset to length zero first) and returns it. Unlike Result, the
// collector keeps ownership of its backing array, so a following Reset
// reuses it — the zero-allocation companion for scan loops.
func (t *TopK) ResultInto(dst []Neighbor) []Neighbor {
	dst = append(dst[:0], t.heap...)
	SortNeighbors(dst)
	return dst
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Dist >= t.heap[i].Dist {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Dist > t.heap[largest].Dist {
			largest = l
		}
		if r < n && t.heap[r].Dist > t.heap[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// MergeNeighborLists merges several ascending neighbor lists into the k
// nearest overall, deduplicating ids. Shard searches use it to combine
// per-partition results (the paper's DEEP100M and Taobao experiments).
func MergeNeighborLists(k int, lists ...[]Neighbor) []Neighbor {
	seen := make(map[int32]struct{})
	top := NewTopK(k)
	for _, list := range lists {
		for _, n := range list {
			if _, dup := seen[n.ID]; dup {
				continue
			}
			seen[n.ID] = struct{}{}
			top.Push(n.ID, n.Dist)
		}
	}
	return top.Result()
}
