package vecmath

import (
	"math/rand"
	"testing"
)

// TestTopKResetReuse drives one collector through many scans with varying k
// and checks each result against a sort-based reference.
func TestTopKResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	top := NewTopK(1)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(12)
		n := rng.Intn(60)
		top.Reset(k)
		var ref []Neighbor
		for i := 0; i < n; i++ {
			d := rng.Float32()
			top.Push(int32(i), d)
			ref = append(ref, Neighbor{ID: int32(i), Dist: d})
		}
		SortNeighbors(ref)
		if len(ref) > k {
			ref = ref[:k]
		}
		// ResultInto must agree with Result and leave the collector's
		// backing array in place for the next Reset.
		into := top.ResultInto(nil)
		got := top.Result()
		if len(into) != len(got) {
			t.Fatalf("trial %d: ResultInto returned %d, Result %d", trial, len(into), len(got))
		}
		for i := range got {
			if into[i] != got[i] {
				t.Fatalf("trial %d: ResultInto[%d] = %v, Result %v", trial, i, into[i], got[i])
			}
		}
		if len(got) != len(ref) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: result[%d] = %v, want %v", trial, i, got[i], ref[i])
			}
		}
		// Result() hands out the backing array, so the next Reset must
		// reallocate rather than scribble over the returned slice.
		top.Reset(k)
		top.Push(0, 0)
		if len(ref) > 0 && len(got) > 0 && &got[0] == &top.heap[0] {
			t.Fatal("Reset after Result reused the handed-out backing array")
		}
	}
}
