package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func naiveL2(a, b []float32) float32 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return float32(s)
}

func TestL2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 96, 128, 960} {
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()*10 - 5
			b[i] = rng.Float32()*10 - 5
		}
		got := L2(a, b)
		want := naiveL2(a, b)
		if !almostEqual(float64(got), float64(want), 1e-5) {
			t.Errorf("dim %d: L2 = %v, naive = %v", dim, got, want)
		}
	}
}

func TestL2Identity(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if d := L2(a, a); d != 0 {
		t.Errorf("L2(a,a) = %v, want 0", d)
	}
}

func TestL2Symmetric(t *testing.T) {
	f := func(pairs []struct{ A, B float32 }) bool {
		if len(pairs) == 0 {
			return true
		}
		a := make([]float32, len(pairs))
		b := make([]float32, len(pairs))
		for i, p := range pairs {
			// testing/quick can generate NaN/Inf-adjacent extremes; clamp
			// into a realistic coordinate range.
			a[i] = float32(math.Mod(float64(p.A), 1e3))
			b[i] = float32(math.Mod(float64(p.B), 1e3))
		}
		return L2(a, b) == L2(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2DimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	L2([]float32{1, 2}, []float32{1})
}

func TestL2TrueTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(20)
		a, b, c := make([]float32, dim), make([]float32, dim), make([]float32, dim)
		for i := 0; i < dim; i++ {
			a[i], b[i], c[i] = rng.Float32(), rng.Float32(), rng.Float32()
		}
		ab := float64(L2True(a, b))
		bc := float64(L2True(b, c))
		ac := float64(L2True(a, c))
		if ac > ab+bc+1e-5 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", ac, ab, bc)
		}
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{3, 4}
	if d := Dot(a, a); d != 25 {
		t.Errorf("Dot = %v, want 25", d)
	}
	if n := Norm(a); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestNormalize(t *testing.T) {
	a := []float32{3, 4, 0, 0, 0}
	Normalize(a)
	if !almostEqual(float64(Norm(a)), 1, 1e-6) {
		t.Errorf("normalized norm = %v, want 1", Norm(a))
	}
	z := []float32{0, 0}
	Normalize(z) // must not NaN
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed by Normalize: %v", z)
	}
}

func TestCentroid(t *testing.T) {
	m := MatrixFromSlices([][]float32{{0, 0}, {2, 4}, {4, 8}})
	c := Centroid(m)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("centroid = %v, want [2 4]", c)
	}
}

func TestMatrixRowSliceClone(t *testing.T) {
	m := NewMatrix(4, 3)
	for i := 0; i < 4; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(i*10 + j)
		}
	}
	if m.Row(2)[1] != 21 {
		t.Errorf("Row(2)[1] = %v, want 21", m.Row(2)[1])
	}
	s := m.Slice(1, 3)
	if s.Rows != 2 || s.Row(0)[0] != 10 {
		t.Errorf("Slice(1,3) wrong: rows=%d first=%v", s.Rows, s.Row(0)[0])
	}
	c := m.Clone()
	c.Row(0)[0] = 999
	if m.Row(0)[0] == 999 {
		t.Error("Clone shares backing array with original")
	}
}

func TestMatrixFromSlicesRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged input")
		}
	}()
	MatrixFromSlices([][]float32{{1, 2}, {1}})
}

func TestCounter(t *testing.T) {
	var c Counter
	a, b := []float32{1, 2}, []float32{3, 4}
	want := L2(a, b)
	for i := 0; i < 5; i++ {
		if got := c.L2(a, b); got != want {
			t.Fatalf("Counter.L2 = %v, want %v", got, want)
		}
	}
	if c.Count() != 5 {
		t.Errorf("Count = %d, want 5", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", c.Count())
	}
	var nilc *Counter
	_ = nilc.L2(a, b) // must not panic
	if nilc.Count() != 0 {
		t.Error("nil counter should count 0")
	}
}

func TestTopKBasic(t *testing.T) {
	top := NewTopK(3)
	for i, d := range []float32{5, 1, 4, 2, 3} {
		top.Push(int32(i), d)
	}
	got := top.Result()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	wantIDs := []int32{1, 3, 4}
	for i, n := range got {
		if n.ID != wantIDs[i] {
			t.Errorf("result[%d].ID = %d, want %d", i, n.ID, wantIDs[i])
		}
	}
}

func TestTopKWorst(t *testing.T) {
	top := NewTopK(2)
	if _, ok := top.Worst(); ok {
		t.Error("Worst should report not-full on empty collector")
	}
	top.Push(0, 10)
	top.Push(1, 20)
	if w, ok := top.Worst(); !ok || w != 20 {
		t.Errorf("Worst = %v,%v want 20,true", w, ok)
	}
	top.Push(2, 5)
	if w, _ := top.Worst(); w != 10 {
		t.Errorf("Worst after eviction = %v, want 10", w)
	}
}

// TestTopKMatchesSort is a property test: TopK must agree with sorting the
// full candidate list.
func TestTopKMatchesSort(t *testing.T) {
	f := func(dists []float32, kRaw uint8) bool {
		if len(dists) == 0 {
			return true
		}
		k := int(kRaw)%len(dists) + 1
		all := make([]Neighbor, len(dists))
		top := NewTopK(k)
		for i, d := range dists {
			if d != d { // NaN would make ordering undefined
				d = 0
			}
			all[i] = Neighbor{ID: int32(i), Dist: d}
			top.Push(int32(i), d)
		}
		SortNeighbors(all)
		got := top.Result()
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i].Dist != all[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortNeighborsTieBreak(t *testing.T) {
	ns := []Neighbor{{ID: 5, Dist: 1}, {ID: 2, Dist: 1}, {ID: 9, Dist: 0}}
	SortNeighbors(ns)
	if ns[0].ID != 9 || ns[1].ID != 2 || ns[2].ID != 5 {
		t.Errorf("tie-break order wrong: %+v", ns)
	}
}

func TestMergeNeighborLists(t *testing.T) {
	a := []Neighbor{{ID: 1, Dist: 1}, {ID: 2, Dist: 3}}
	b := []Neighbor{{ID: 1, Dist: 1}, {ID: 3, Dist: 2}}
	got := MergeNeighborLists(2, a, b)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("merge = %+v, want ids [1 3]", got)
	}
}

func BenchmarkL2Dim128(b *testing.B) { benchL2(b, 128) }
func BenchmarkL2Dim960(b *testing.B) { benchL2(b, 960) }

func benchL2(b *testing.B, dim int) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, dim)
	y := make([]float32, dim)
	for i := range x {
		x[i], y[i] = rng.Float32(), rng.Float32()
	}
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += L2(x, y)
	}
	_ = sink
}

func TestCounterAddN(t *testing.T) {
	var c Counter
	c.AddN(7)
	c.L2([]float32{1}, []float32{2})
	if c.Count() != 8 {
		t.Errorf("Count = %d, want 8", c.Count())
	}
	var nilc *Counter
	nilc.AddN(5) // must not panic
}
