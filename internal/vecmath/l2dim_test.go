package vecmath

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The L2 kernel is 8-way unrolled with a scalar tail loop; dimensions that
// are not multiples of 8 exercise the tail. These tests check every tail
// length exhaustively against a float64 reference, so a kernel rewrite
// (unroll width change, SIMD port) that mishandles the remainder fails
// loudly instead of silently corrupting distances on odd dimensions.

// l2Ref accumulates in float64, the order-insensitive reference.
func l2Ref(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// TestL2DimSweepParity runs dims 1..33 (every unroll remainder twice over,
// plus the first two full blocks) and a few serving dims, comparing the
// kernel to the float64 reference within float32 accumulation tolerance.
func TestL2DimSweepParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dims := make([]int, 0, 40)
	for d := 1; d <= 33; d++ {
		dims = append(dims, d)
	}
	dims = append(dims, 64, 100, 128, 960)
	for _, dim := range dims {
		for trial := 0; trial < 20; trial++ {
			a := make([]float32, dim)
			b := make([]float32, dim)
			for i := range a {
				a[i] = rng.Float32()*20 - 10
				b[i] = rng.Float32()*20 - 10
			}
			got := float64(L2(a, b))
			want := l2Ref(a, b)
			// float32 summation of dim terms: relative error grows with the
			// number of additions; 1e-5 is ~100x the worst observed here.
			tol := 1e-5 * math.Max(want, 1)
			if math.Abs(got-want) > tol {
				t.Fatalf("dim %d trial %d: L2=%g, float64 ref=%g, |diff|=%g > %g",
					dim, trial, got, want, math.Abs(got-want), tol)
			}
		}
	}
}

// TestL2TailExact pins the tail loop with values where float arithmetic is
// exact (small integers), so any skipped or double-counted tail element is
// a hard mismatch, not a tolerance question.
func TestL2TailExact(t *testing.T) {
	for dim := 1; dim <= 33; dim++ {
		a := make([]float32, dim)
		b := make([]float32, dim)
		var want float32
		for i := range a {
			a[i] = float32(i + 1)
			b[i] = float32(-(i % 7))
			d := a[i] - b[i]
			want += d * d
		}
		if got := L2(a, b); got != want {
			t.Fatalf("dim %d: L2=%g, exact sum=%g", dim, got, want)
		}
	}
}

// TestL2ToRowsDimSweep checks the batched gather stays bit-identical to
// per-row L2 calls on tail-bearing dimensions (its documented contract).
func TestL2ToRowsDimSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range []int{1, 3, 7, 8, 9, 15, 17, 31, 33} {
		m := NewMatrix(50, dim)
		for i := range m.Data {
			m.Data[i] = rng.Float32()*2 - 1
		}
		q := make([]float32, dim)
		for i := range q {
			q[i] = rng.Float32()*2 - 1
		}
		ids := []int32{0, 49, 7, 7, 13}
		out := make([]float32, len(ids))
		L2ToRows(m, q, ids, out)
		for i, id := range ids {
			if want := L2(q, m.Row(int(id))); out[i] != want {
				t.Fatalf("dim %d row %d: gather %g != direct %g", dim, id, out[i], want)
			}
		}
	}
}

// BenchmarkL2 sweeps the kernel across dimensions — full unroll blocks,
// odd tails, and the paper's serving dims — so a kernel regression on any
// shape is visible in the ns/op trajectory.
func BenchmarkL2(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	for _, dim := range []int{4, 8, 15, 16, 31, 32, 33, 64, 100, 128, 960} {
		a := make([]float32, dim)
		c := make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()
			c[i] = rng.Float32()
		}
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += L2(a, c)
			}
			_ = s
		})
	}
}
