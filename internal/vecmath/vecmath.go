// Package vecmath provides the low-level float32 vector primitives used by
// every index in this repository: squared Euclidean distance, batch
// distances, centroids, norms and small top-k helpers.
//
// The paper's reference implementation uses SIMD intrinsics; Go has no stable
// stdlib SIMD story, so the kernels here are 8-way manually unrolled scalar
// loops. They produce identical results with a constant-factor slowdown,
// which preserves every relative comparison the paper reports.
package vecmath

import (
	"fmt"
	"math"
)

// L2 returns the squared Euclidean distance between a and b.
//
// The squared distance is used everywhere in this repository: it is monotone
// in the true distance, so nearest-neighbor order is unchanged and the sqrt
// is skipped. Panics if the slices have different lengths.
func L2(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		d4 := a[i+4] - b[i+4]
		d5 := a[i+5] - b[i+5]
		d6 := a[i+6] - b[i+6]
		d7 := a[i+7] - b[i+7]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		s4 += d4 * d4
		s5 += d5 * d5
		s6 += d6 * d6
		s7 += d7 * d7
	}
	s := (s0 + s1) + (s2 + s3) + (s4 + s5) + (s6 + s7)
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// L2True returns the (non-squared) Euclidean distance between a and b.
func L2True(a, b []float32) float32 {
	return float32(math.Sqrt(float64(L2(a, b))))
}

// Dot returns the inner product of a and b. Panics on dimension mismatch.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: dimension mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Normalize scales a in place to unit Euclidean norm. Zero vectors are left
// unchanged.
func Normalize(a []float32) {
	n := Norm(a)
	if n == 0 {
		return
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
}

// Centroid returns the arithmetic mean of the rows of a Matrix. It
// accumulates in float64 so large datasets do not lose precision. Panics if
// the matrix has no rows.
func Centroid(m Matrix) []float32 {
	if m.Rows == 0 {
		panic("vecmath: centroid of empty matrix")
	}
	acc := make([]float64, m.Dim)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			acc[j] += float64(v)
		}
	}
	out := make([]float32, m.Dim)
	inv := 1 / float64(m.Rows)
	for j, v := range acc {
		out[j] = float32(v * inv)
	}
	return out
}

// Matrix is a dense row-major collection of vectors sharing one backing
// slice, giving the contiguous memory layout that graph traversal relies on.
type Matrix struct {
	Data []float32 // len == Rows*Dim
	Rows int
	Dim  int
}

// NewMatrix allocates a zeroed rows×dim matrix.
func NewMatrix(rows, dim int) Matrix {
	if rows < 0 || dim <= 0 {
		panic(fmt.Sprintf("vecmath: invalid matrix shape %dx%d", rows, dim))
	}
	return Matrix{Data: make([]float32, rows*dim), Rows: rows, Dim: dim}
}

// MatrixFromSlices copies vecs into a contiguous Matrix. All vectors must
// share the same dimension.
func MatrixFromSlices(vecs [][]float32) Matrix {
	if len(vecs) == 0 {
		panic("vecmath: empty vector set")
	}
	dim := len(vecs[0])
	m := NewMatrix(len(vecs), dim)
	for i, v := range vecs {
		if len(v) != dim {
			panic(fmt.Sprintf("vecmath: ragged vectors: row %d has dim %d, want %d", i, len(v), dim))
		}
		copy(m.Row(i), v)
	}
	return m
}

// Row returns the i-th vector as a subslice of the backing array. The caller
// must not resize it; writes are visible in the matrix.
func (m Matrix) Row(i int) []float32 {
	return m.Data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

// Slice returns a view of rows [lo,hi) sharing the same backing array.
func (m Matrix) Slice(lo, hi int) Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("vecmath: slice [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return Matrix{Data: m.Data[lo*m.Dim : hi*m.Dim], Rows: hi - lo, Dim: m.Dim}
}

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := NewMatrix(m.Rows, m.Dim)
	copy(c.Data, m.Data)
	return c
}

// Counter counts distance computations. The paper's Figure 8 compares
// methods by the number of distance evaluations needed to reach a target
// precision; all searchers route their distance calls through a Counter so
// that figure can be reproduced exactly. A nil *Counter is valid and counts
// nothing.
type Counter struct {
	n uint64
}

// L2 computes the squared distance and increments the counter.
func (c *Counter) L2(a, b []float32) float32 {
	if c != nil {
		c.n++
	}
	return L2(a, b)
}

// AddN records n distance evaluations that happened outside the L2 helper —
// quantized (ADC) candidate scoring in IVFPQ counts each scanned code as one
// evaluation, matching how the paper's Figure 8 counts "distance
// calculations" for Faiss.
func (c *Counter) AddN(n uint64) {
	if c != nil {
		c.n += n
	}
}

// Count returns the number of distance computations recorded so far.
func (c *Counter) Count() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.n = 0
	}
}
