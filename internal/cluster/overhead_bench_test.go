package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/distsearch"
	"repro/internal/vecmath"
)

// httpTopo boots nShards trivial HTTP shard servers answering canned
// responses, isolating the router's own per-query cost from search work.
func httpTopo(b *testing.B, nShards int) (cluster.Topology, func()) {
	b.Helper()
	resp := cluster.SearchResponse{
		IDs:   []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		Dists: []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
	blob, err := json.Marshal(resp)
	if err != nil {
		b.Fatal(err)
	}
	topo := cluster.Topology{}
	var servers []*httptest.Server
	for si := 0; si < nShards; si++ {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(blob)
		}))
		servers = append(servers, ts)
		topo.Shards = append(topo.Shards, cluster.Shard{
			Replicas: []string{ts.URL},
			IDOffset: int32(si * 100),
		})
	}
	return topo, func() {
		for _, ts := range servers {
			ts.Close()
		}
	}
}

// BenchmarkRouterHTTP prices a routed query against trivial shard servers:
// the machinery (fan-out, retry loop, hedge watchdog, health, merge) plus
// three real HTTP round trips. Compare against BenchmarkDirectFanoutHTTP —
// the difference is what the robustness tier costs per query.
func BenchmarkRouterHTTP(b *testing.B) {
	for _, hedge := range []time.Duration{0, 25 * time.Millisecond} {
		name := "hedge=off"
		if hedge > 0 {
			name = "hedge=on"
		}
		b.Run(name, func(b *testing.B) {
			topo, closeAll := httpTopo(b, 3)
			defer closeAll()
			rt, err := cluster.New(topo, cluster.NewHTTPTransport(), cluster.Options{
				AttemptTimeout: 2 * time.Second,
				HedgeAfter:     hedge,
				ProbeInterval:  time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			q := make([]float32, 32)
			var buf []vecmath.Neighbor
			ctx := context.Background()
			if buf, _, err = rt.SearchAppend(ctx, buf[:0], q, 10, 40); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _, err = rt.SearchAppend(ctx, buf[:0], q, 10, 40)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDirectFanoutHTTP is the floor the router is priced against: the
// same parallel per-shard calls (with the same per-call deadline) and the
// same k-way merge, with no retry/hedge/health machinery.
func BenchmarkDirectFanoutHTTP(b *testing.B) {
	topo, closeAll := httpTopo(b, 3)
	defer closeAll()
	tr := cluster.NewHTTPTransport()
	q := make([]float32, 32)
	lists := make([][]vecmath.Neighbor, len(topo.Shards))
	errs := make([]error, len(topo.Shards))
	var out, merged []vecmath.Neighbor
	pass := func() error {
		req := &cluster.SearchRequest{Query: q, K: 10, L: 40}
		var wg sync.WaitGroup
		wg.Add(len(topo.Shards))
		for si := range topo.Shards {
			go func(si int) {
				defer wg.Done()
				cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				resp, err := tr.Search(cctx, topo.Shards[si].Replicas[0], req)
				if err != nil {
					errs[si] = err
					lists[si] = lists[si][:0]
					return
				}
				list := lists[si][:0]
				for i := range resp.IDs {
					list = append(list, vecmath.Neighbor{ID: resp.IDs[i] + topo.Shards[si].IDOffset, Dist: resp.Dists[i]})
				}
				lists[si] = list
			}(si)
		}
		wg.Wait()
		out, merged = distsearch.MergeInto(out[:0], merged, 10, lists)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := pass(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pass(); err != nil {
			b.Fatal(err)
		}
	}
}
