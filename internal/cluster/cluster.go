// Package cluster implements the replicated network serving tier: a router
// that fans each query out to N shards × R replicas of nsgserve processes
// and merges the per-shard answers exactly as the in-process fan-out does.
// This is the deployment shape of the paper's production systems — Taobao's
// e-commerce search serves its partitioned NSGs from a fleet, not one
// process — where a single slow or dead node must cost a retry, never the
// service.
//
// Each per-shard call is made robust independently: per-attempt timeouts,
// retry with exponential backoff and jitter rotating across replicas,
// optional hedged second requests after a latency threshold (first response
// wins, the loser is canceled via its context), and active health checking
// that ejects a replica after consecutive failures and probes it back in.
// When every replica of a shard is down the router degrades by policy:
// PartialFail refuses the query (HTTP 503 at the command layer) while
// PartialServe answers from the surviving shards with the result flagged
// degraded and the missing shards listed — recall degrades smoothly instead
// of availability going to zero.
//
// All network calls go through the Transport interface; FaultTransport
// wraps any Transport with per-replica injected faults (error rates, added
// latency, hangs, a kill switch) so every failure path has deterministic
// unit tests, and cmd/bench -exp cluster runs the same router against real
// SIGKILLed processes.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/distsearch"
	"repro/internal/vecmath"
)

// Topology is the router's static cluster layout: an ordered list of shards,
// each served by one or more interchangeable replicas. Replicas of a shard
// must serve the same bundle; shards must partition the corpus.
type Topology struct {
	Shards []Shard `json:"shards"`
}

// Shard names the replicas serving one partition of the corpus.
type Shard struct {
	// Replicas are the shard's server addresses (host:port). All replicas
	// serve the same shard bundle and are interchangeable.
	Replicas []string `json:"replicas"`
	// IDOffset is added to the shard's returned (shard-local) ids to
	// recover global ids; shards built over contiguous row ranges of one
	// corpus set it to their range start.
	IDOffset int32 `json:"id_offset,omitempty"`
}

// Validate checks the topology is servable: at least one shard, each with
// at least one replica.
func (t Topology) Validate() error {
	if len(t.Shards) == 0 {
		return fmt.Errorf("cluster: topology has no shards")
	}
	for si, sh := range t.Shards {
		if len(sh.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", si)
		}
		for ri, addr := range sh.Replicas {
			if addr == "" {
				return fmt.Errorf("cluster: shard %d replica %d has an empty address", si, ri)
			}
		}
	}
	return nil
}

// LoadTopology reads a topology JSON file:
//
//	{"shards": [
//	  {"replicas": ["127.0.0.1:8081", "127.0.0.1:8082"], "id_offset": 0},
//	  {"replicas": ["127.0.0.1:8083", "127.0.0.1:8084"], "id_offset": 4000}
//	]}
func LoadTopology(path string) (Topology, error) {
	var t Topology
	blob, err := os.ReadFile(path)
	if err != nil {
		return t, fmt.Errorf("cluster: %w", err)
	}
	if err := json.Unmarshal(blob, &t); err != nil {
		return t, fmt.Errorf("cluster: parse topology %s: %w", path, err)
	}
	return t, t.Validate()
}

// PartialPolicy decides what a query gets when at least one shard has no
// reachable replica.
type PartialPolicy int

const (
	// PartialFail refuses the query: correctness over availability.
	PartialFail PartialPolicy = iota
	// PartialServe answers from the surviving shards, flagging the result
	// degraded and listing the missing shards: availability over
	// completeness, with the gap explicit.
	PartialServe
)

// ParsePartialPolicy parses the -partial flag values "fail" and "serve".
func ParsePartialPolicy(s string) (PartialPolicy, error) {
	switch s {
	case "fail":
		return PartialFail, nil
	case "serve":
		return PartialServe, nil
	}
	return PartialFail, fmt.Errorf("cluster: unknown partial policy %q (want fail or serve)", s)
}

func (p PartialPolicy) String() string {
	if p == PartialServe {
		return "serve"
	}
	return "fail"
}

// Options tunes the router's robustness machinery. The zero value gets
// sensible defaults from fillDefaults.
type Options struct {
	// AttemptTimeout bounds each individual replica call (default 2s).
	AttemptTimeout time.Duration
	// MaxAttempts is the total calls one shard query may spend across
	// replicas, counting the first (default 2 per replica, at least 3).
	MaxAttempts int
	// RetryBackoff is the base delay before the second attempt; it doubles
	// per retry (capped at maxBackoff) and is jittered to avoid retry
	// synchronization across concurrent queries (default 5ms).
	RetryBackoff time.Duration
	// HedgeAfter, when positive, fires a second request to the next
	// replica if the primary has not answered within this threshold; the
	// first success wins and the loser is canceled. 0 disables hedging.
	HedgeAfter time.Duration
	// Partial is the degradation policy when a whole shard is down.
	Partial PartialPolicy
	// EjectAfter ejects a replica after this many consecutive failures
	// (default 3). Ejected replicas are retried last and readmitted by the
	// first success, from queries or probes.
	EjectAfter int
	// ProbeInterval is the active health checker's cadence; <= 0 leaves
	// probing to the caller (tests use ProbeNow).
	ProbeInterval time.Duration
	// Seed makes backoff jitter deterministic in tests (0 means 1).
	Seed int64
}

// maxBackoff caps the exponential retry backoff.
const maxBackoff = 500 * time.Millisecond

func (o *Options) fillDefaults(maxReplicas int) {
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2 * maxReplicas
		if o.MaxAttempts < 3 {
			o.MaxAttempts = 3
		}
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Router fans queries across a replicated cluster. Safe for concurrent use.
type Router struct {
	topo   Topology
	tr     Transport
	opts   Options
	shards []*shardState

	// scratch pools fan-out state so the response-side merge reuses the
	// same zero-alloc concatenate-sort-truncate path as the in-process
	// fan-out (distsearch.MergeInto).
	scratch sync.Pool

	met metrics

	rngMu sync.Mutex
	rng   *rand.Rand

	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// metrics are the router's lifetime counters (atomics; see Metrics).
type metrics struct {
	queries, attempts, retries   atomic.Uint64
	hedges, hedgeWins            atomic.Uint64
	shardFailures, failedQueries atomic.Uint64
	degraded                     atomic.Uint64
	ejections, readmits          atomic.Uint64
}

// Metrics is a snapshot of the router's lifetime counters.
type Metrics struct {
	Queries       uint64 `json:"queries"`        // Search calls
	Attempts      uint64 `json:"attempts"`       // replica calls launched (incl. hedges)
	Retries       uint64 `json:"retries"`        // attempts after the first, per shard query
	Hedges        uint64 `json:"hedges"`         // hedged second requests fired
	HedgeWins     uint64 `json:"hedge_wins"`     // hedges that answered first
	ShardFailures uint64 `json:"shard_failures"` // shard queries that exhausted all attempts
	FailedQueries uint64 `json:"failed_queries"` // Search calls that returned an error
	Degraded      uint64 `json:"degraded"`       // Search calls answered degraded
	Ejections     uint64 `json:"ejections"`      // replica ejection events
	Readmits      uint64 `json:"readmits"`       // ejected replicas probed/called back in
}

// Metrics returns a snapshot of the router's counters.
func (r *Router) Metrics() Metrics {
	return Metrics{
		Queries:       r.met.queries.Load(),
		Attempts:      r.met.attempts.Load(),
		Retries:       r.met.retries.Load(),
		Hedges:        r.met.hedges.Load(),
		HedgeWins:     r.met.hedgeWins.Load(),
		ShardFailures: r.met.shardFailures.Load(),
		FailedQueries: r.met.failedQueries.Load(),
		Degraded:      r.met.degraded.Load(),
		Ejections:     r.met.ejections.Load(),
		Readmits:      r.met.readmits.Load(),
	}
}

// New builds a router over the topology and transport. When
// opts.ProbeInterval is positive the active health checker starts
// immediately; call Close to stop it.
func New(topo Topology, tr Transport, opts Options) (*Router, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	maxReplicas := 0
	for _, sh := range topo.Shards {
		if len(sh.Replicas) > maxReplicas {
			maxReplicas = len(sh.Replicas)
		}
	}
	opts.fillDefaults(maxReplicas)
	r := &Router{topo: topo, tr: tr, opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
	r.shards = make([]*shardState, len(topo.Shards))
	for si, sh := range topo.Shards {
		r.shards[si] = newShardState(sh.Replicas)
	}
	if opts.ProbeInterval > 0 {
		r.probeStop = make(chan struct{})
		r.probeDone = make(chan struct{})
		go r.probeLoop()
	}
	return r, nil
}

// Close stops the health prober (if running). The router may still be
// searched afterwards; only active probing stops.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		if r.probeStop != nil {
			close(r.probeStop)
			<-r.probeDone
		}
	})
}

// Shards returns the number of shards in the topology.
func (r *Router) Shards() int { return len(r.topo.Shards) }

// Partial returns the router's configured degradation policy.
func (r *Router) Partial() PartialPolicy { return r.opts.Partial }

// ShardsDownError reports the shards that had no reachable replica when a
// query could not be (fully) served under the fail policy.
type ShardsDownError struct {
	Shards []int // topology indexes
}

func (e *ShardsDownError) Error() string {
	return fmt.Sprintf("cluster: no reachable replica for shard(s) %v", e.Shards)
}

// Result annotates one query's answer with its completeness: a degraded
// result covers only the surviving shards named by Missing's complement.
type Result struct {
	// Degraded is true when at least one shard contributed nothing (only
	// possible under PartialServe; PartialFail returns an error instead).
	Degraded bool `json:"degraded,omitempty"`
	// Missing lists the topology indexes of shards that contributed no
	// results.
	Missing []int `json:"missing_shards,omitempty"`
}

// fanState is one query's pooled fan-out scratch: per-shard neighbor
// buffers (global ids), per-shard errors, the surviving-list view, and the
// merge buffer distsearch.MergeInto recycles.
type fanState struct {
	bufs   [][]vecmath.Neighbor
	errs   []error
	lists  [][]vecmath.Neighbor
	merged []vecmath.Neighbor
	order  [][]int // per-shard replica-order scratch
}

func (r *Router) getFan() *fanState {
	if f, _ := r.scratch.Get().(*fanState); f != nil {
		return f
	}
	n := len(r.shards)
	return &fanState{
		bufs:  make([][]vecmath.Neighbor, n),
		errs:  make([]error, n),
		lists: make([][]vecmath.Neighbor, 0, n),
		order: make([][]int, n),
	}
}

// Search fans the query out to every shard and returns the k nearest
// overall in a fresh slice, with the result's completeness annotation.
// Under PartialFail a down shard yields a *ShardsDownError; under
// PartialServe it yields a degraded result — unless no shard at all is
// reachable, which is an error under either policy.
func (r *Router) Search(ctx context.Context, q []float32, k, l int) ([]vecmath.Neighbor, Result, error) {
	ns, res, err := r.SearchAppend(ctx, nil, q, k, l)
	return ns, res, err
}

// SearchAppend is Search appending into a caller-owned buffer (pass a
// reused slice truncated to [:0]); the merge side reuses pooled buffers via
// the same distsearch merge hook as the in-process fan-out.
func (r *Router) SearchAppend(ctx context.Context, dst []vecmath.Neighbor, q []float32, k, l int) ([]vecmath.Neighbor, Result, error) {
	return r.SearchFilteredAppend(ctx, dst, q, k, l, nil)
}

// SearchFilteredAppend is SearchAppend with an opaque predicate clause
// forwarded to every shard server (nil means unfiltered). The router merges
// filtered per-shard answers exactly like unfiltered ones — each backend
// guarantees its results pass the predicate, and merging preserves that.
func (r *Router) SearchFilteredAppend(ctx context.Context, dst []vecmath.Neighbor, q []float32, k, l int, filter json.RawMessage) ([]vecmath.Neighbor, Result, error) {
	r.met.queries.Add(1)
	f := r.getFan()
	// One request serves every shard (and every retry/hedge within it): the
	// transport caches its marshaled body, so the query is encoded once.
	req := &SearchRequest{Query: q, K: k, L: l, Filter: filter}
	var wg sync.WaitGroup
	wg.Add(len(r.shards))
	for si := range r.shards {
		go func(si int) {
			defer wg.Done()
			f.bufs[si], f.errs[si] = r.searchShard(ctx, si, f.bufs[si][:0], f, req)
		}(si)
	}
	wg.Wait()

	var res Result
	lists := f.lists[:0]
	for si := range f.errs {
		if f.errs[si] != nil {
			res.Missing = append(res.Missing, si)
		} else {
			lists = append(lists, f.bufs[si])
		}
	}
	f.lists = lists[:0]
	if len(res.Missing) > 0 {
		switch {
		case len(lists) == 0:
			// Nothing to serve: an error under either policy.
			r.met.failedQueries.Add(1)
			r.scratch.Put(f)
			return dst, Result{}, &ShardsDownError{Shards: res.Missing}
		case r.opts.Partial == PartialFail:
			r.met.failedQueries.Add(1)
			r.scratch.Put(f)
			return dst, Result{}, &ShardsDownError{Shards: res.Missing}
		default:
			res.Degraded = true
			r.met.degraded.Add(1)
		}
	}
	dst, f.merged = distsearch.MergeInto(dst, f.merged, k, lists)
	r.scratch.Put(f)
	return dst, res, nil
}

// searchShard answers one shard's part of a query robustly: rotate through
// replicas (healthy first), one per attempt, each under AttemptTimeout,
// with exponential jittered backoff between attempts and an optional hedged
// second request racing the primary. Returns the shard's neighbors with
// global ids appended to buf.
func (r *Router) searchShard(ctx context.Context, si int, buf []vecmath.Neighbor, f *fanState, req *SearchRequest) ([]vecmath.Neighbor, error) {
	st := r.shards[si]
	order := st.order(f.order[si][:0])
	backoff := r.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < r.opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 0 {
			r.met.retries.Add(1)
			if !sleepCtx(ctx, r.jitter(backoff)) {
				break
			}
			if backoff < maxBackoff {
				backoff *= 2
			}
		}
		// The preference order is fixed for the query (healthy-first at
		// entry): attempts walk it in sequence, so a retry always moves to
		// a different replica before wrapping back to a failed one.
		primary := order[attempt%len(order)]
		hedge := -1
		if r.opts.HedgeAfter > 0 && len(order) > 1 {
			hedge = order[(attempt+1)%len(order)]
		}
		resp, err := r.attempt(ctx, si, primary, hedge, req)
		if err == nil {
			off := r.topo.Shards[si].IDOffset
			for i := range resp.IDs {
				buf = append(buf, vecmath.Neighbor{ID: resp.IDs[i] + off, Dist: resp.Dists[i]})
			}
			f.order[si] = order[:0]
			return buf, nil
		}
		lastErr = err
	}
	f.order[si] = order[:0]
	r.met.shardFailures.Add(1)
	return buf, fmt.Errorf("cluster: shard %d: attempts exhausted: %w", si, lastErr)
}

// attempt runs one retry-loop step: the primary replica call, plus — when
// hedging is configured and the primary is silent past HedgeAfter — a
// hedged call to the next replica. The first success wins and the loser is
// canceled through its context; if the primary errors before the hedge
// timer fires, the step returns immediately so the outer loop backs off.
//
// The primary runs inline on the shard goroutine and the hedge is an
// AfterFunc watchdog: on the common path (the primary answers before
// HedgeAfter) the hedging machinery costs one stopped timer — no extra
// goroutine, channel send, or scheduler handoff per call. A hedge that wins
// cancels the primary's context, which unblocks the inline call.
func (r *Router) attempt(ctx context.Context, si, primary, hedge int, req *SearchRequest) (*SearchResponse, error) {
	if hedge < 0 {
		r.met.attempts.Add(1)
		return r.callReplica(ctx, si, primary, req)
	}
	type outcome struct {
		resp *SearchResponse
		err  error
	}
	pctx, pCancel := context.WithCancel(ctx)
	defer pCancel()
	hctx, hCancel := context.WithCancel(ctx)
	defer hCancel()
	ch := make(chan outcome, 1)
	timer := time.AfterFunc(r.opts.HedgeAfter, func() {
		r.met.hedges.Add(1)
		r.met.attempts.Add(1)
		resp, herr := r.callReplica(hctx, si, hedge, req)
		if herr == nil {
			pCancel() // hedge won: reel the blocked primary back in
		}
		ch <- outcome{resp, herr}
	})
	r.met.attempts.Add(1)
	resp, err := r.callReplica(pctx, si, primary, req)
	// Stop reports false once the watchdog has started: a hedge is (or was)
	// in flight and owns the buffered channel slot.
	hedged := !timer.Stop()
	if err == nil {
		// A still-running hedge loser is canceled by the deferred hCancel;
		// its buffered send never blocks.
		return resp, nil
	}
	if !hedged {
		return nil, err
	}
	select {
	case out := <-ch:
		if out.err == nil {
			r.met.hedgeWins.Add(1)
			return out.resp, nil
		}
		// Both sides failed. The primary's error names the root cause
		// unless the primary was merely canceled from above.
		if errors.Is(err, context.Canceled) {
			return nil, out.err
		}
		return nil, err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// callReplica performs one transport call under the per-attempt timeout,
// feeding the health tracker: a success readmits, a genuine failure
// (including an attempt timeout) advances the ejection streak. A
// cancellation from above — the query finished elsewhere or a hedge winner
// canceled this loser — is not the replica's fault and is not recorded.
func (r *Router) callReplica(ctx context.Context, si, ri int, req *SearchRequest) (*SearchResponse, error) {
	st := r.shards[si]
	addr := r.topo.Shards[si].Replicas[ri]
	actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
	defer cancel()
	resp, err := r.tr.Search(actx, addr, req)
	if err == nil {
		if st.recordSuccess(ri) {
			r.met.readmits.Add(1)
		}
		return resp, nil
	}
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		return nil, err
	}
	if st.recordFailure(ri, r.opts.EjectAfter) {
		r.met.ejections.Add(1)
	}
	return nil, fmt.Errorf("replica %s: %w", addr, err)
}

// jitter spreads a backoff delay over [d/2, d) so concurrent retries do not
// synchronize into bursts against a recovering replica.
func (r *Router) jitter(d time.Duration) time.Duration {
	r.rngMu.Lock()
	j := r.rng.Int63n(int64(d)/2 + 1)
	r.rngMu.Unlock()
	return d/2 + time.Duration(j)
}

// sleepCtx sleeps d unless ctx finishes first; reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
