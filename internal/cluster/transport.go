package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// SearchRequest is one per-shard search call: the same JSON shape nsgserve's
// POST /search accepts, so the router speaks to unmodified shard servers.
// One request is shared read-only across a query's shard fan-out; use it by
// pointer (it caches its marshaled body and must not be copied).
type SearchRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	L     int       `json:"l,omitempty"`
	// Filter is an opaque predicate clause forwarded verbatim to each shard
	// server (nsgserve's "filter" field). The router never parses it — each
	// backend compiles the clause against its own metadata store, so a bad
	// clause surfaces as a per-replica 400, not a router-side error.
	Filter json.RawMessage `json:"filter,omitempty"`

	bodyOnce sync.Once
	bodyBlob []byte
	bodyErr  error
}

// body marshals the request once; every replica attempt of every shard
// reuses the same bytes.
func (r *SearchRequest) body() ([]byte, error) {
	r.bodyOnce.Do(func() { r.bodyBlob, r.bodyErr = json.Marshal(r) })
	return r.bodyBlob, r.bodyErr
}

// SearchResponse is one replica's answer: shard-local ids (the router
// translates them with the shard's IDOffset) and exact squared L2 distances.
type SearchResponse struct {
	IDs   []int32   `json:"ids"`
	Dists []float32 `json:"dists"`
}

// Transport performs the router's per-replica calls. Implementations must be
// safe for concurrent use; every call must honor ctx cancellation (the
// router cancels hedged losers and enforces per-attempt timeouts through
// it). FaultTransport wraps any Transport with injected failures so every
// router failure path is unit-testable without real processes.
type Transport interface {
	// Search runs one query against the replica at addr.
	Search(ctx context.Context, addr string, req *SearchRequest) (*SearchResponse, error)
	// Ready probes the replica's readiness (nsgserve's GET /readyz); a nil
	// error means the replica is loaded and willing to serve.
	Ready(ctx context.Context, addr string) error
}

// HTTPTransport talks to nsgserve replicas over HTTP. Addresses are
// host:port (a scheme may be included; http:// is assumed otherwise).
type HTTPTransport struct {
	// Client is used for all calls; nil means a private client with sane
	// connection pooling. Per-attempt deadlines come from the context, so
	// the client itself carries no timeout.
	Client *http.Client
}

// NewHTTPTransport returns a transport with its own pooled client.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func baseURL(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// Search implements Transport over nsgserve's POST /search.
func (t *HTTPTransport) Search(ctx context.Context, addr string, req *SearchRequest) (*SearchResponse, error) {
	blob, err := req.body()
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL(addr)+"/search", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return nil, fmt.Errorf("%s /search: status %d: %s", addr, hresp.StatusCode, bytes.TrimSpace(body))
	}
	var resp SearchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("%s /search: decode: %w", addr, err)
	}
	if len(resp.IDs) != len(resp.Dists) {
		return nil, fmt.Errorf("%s /search: %d ids but %d dists", addr, len(resp.IDs), len(resp.Dists))
	}
	return &resp, nil
}

// Ready implements Transport over nsgserve's GET /readyz.
func (t *HTTPTransport) Ready(ctx context.Context, addr string) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL(addr)+"/readyz", nil)
	if err != nil {
		return err
	}
	hresp, err := t.client().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(hresp.Body, 512))
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s /readyz: status %d", addr, hresp.StatusCode)
	}
	return nil
}
