package cluster

import (
	"context"
	"sync"
	"time"
)

// shardState tracks the health of one shard's replicas. Queries and the
// background prober both feed it: any successful call (search or readiness
// probe) resets a replica's failure streak and readmits it; EjectAfter
// consecutive failures eject it. Ejected replicas are deprioritized, not
// forbidden — when every replica of a shard is ejected the retry loop still
// tries them, so a recovered replica is readmitted by the first query to
// reach it even before the prober notices.
type shardState struct {
	mu   sync.Mutex
	reps []replicaState
	rr   uint32 // rotation cursor so load spreads across healthy replicas
}

type replicaState struct {
	addr        string
	consecFails int
	ejected     bool
	fails       uint64 // lifetime failed calls
	ejections   uint64 // lifetime ejection events
}

func newShardState(replicas []string) *shardState {
	st := &shardState{reps: make([]replicaState, len(replicas))}
	for i, addr := range replicas {
		st.reps[i].addr = addr
	}
	return st
}

// order appends the replica indexes to try, in preference order: healthy
// replicas first (starting from a rotating cursor so concurrent queries
// spread load), then ejected ones as a last resort.
func (st *shardState) order(dst []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.reps)
	start := int(st.rr) % n
	st.rr++
	for i := 0; i < n; i++ {
		ri := (start + i) % n
		if !st.reps[ri].ejected {
			dst = append(dst, ri)
		}
	}
	for i := 0; i < n; i++ {
		ri := (start + i) % n
		if st.reps[ri].ejected {
			dst = append(dst, ri)
		}
	}
	return dst
}

// recordSuccess resets the replica's failure streak, reporting whether this
// readmitted a previously ejected replica.
func (st *shardState) recordSuccess(ri int) (readmitted bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := &st.reps[ri]
	readmitted = r.ejected
	r.ejected = false
	r.consecFails = 0
	return readmitted
}

// recordFailure bumps the replica's failure streak, ejecting it once the
// streak reaches ejectAfter; reports whether this call ejected it.
func (st *shardState) recordFailure(ri, ejectAfter int) (ejected bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := &st.reps[ri]
	r.fails++
	r.consecFails++
	if !r.ejected && r.consecFails >= ejectAfter {
		r.ejected = true
		r.ejections++
		return true
	}
	return false
}

// healthyCount returns how many replicas are currently admitted.
func (st *shardState) healthyCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for i := range st.reps {
		if !st.reps[i].ejected {
			n++
		}
	}
	return n
}

// ReplicaHealth is one replica's externally visible health state, served by
// the router's /stats endpoint.
type ReplicaHealth struct {
	Addr        string `json:"addr"`
	Healthy     bool   `json:"healthy"`
	ConsecFails int    `json:"consec_fails"`
	Fails       uint64 `json:"fails"`
	Ejections   uint64 `json:"ejections"`
}

func (st *shardState) snapshot() []ReplicaHealth {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ReplicaHealth, len(st.reps))
	for i, r := range st.reps {
		out[i] = ReplicaHealth{
			Addr: r.addr, Healthy: !r.ejected,
			ConsecFails: r.consecFails, Fails: r.fails, Ejections: r.ejections,
		}
	}
	return out
}

// Health returns a per-shard snapshot of replica health.
func (r *Router) Health() [][]ReplicaHealth {
	out := make([][]ReplicaHealth, len(r.shards))
	for si, st := range r.shards {
		out[si] = st.snapshot()
	}
	return out
}

// Ready reports serving ability: full means every shard has at least one
// admitted replica; partial means at least one shard does. A router with
// PartialServe policy is useful (degraded) at partial; with PartialFail it
// needs full.
func (r *Router) Ready() (full, partial bool) {
	full = true
	for _, st := range r.shards {
		if st.healthyCount() > 0 {
			partial = true
		} else {
			full = false
		}
	}
	return full, partial
}

// probeLoop runs the active health checker: every ProbeInterval it probes
// all replicas' readiness in parallel. Failing probes eject a replica after
// EjectAfter consecutive failures (the same streak queries feed); a passing
// probe on an ejected replica probes it back in.
func (r *Router) probeLoop() {
	defer close(r.probeDone)
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
			r.ProbeNow()
		}
	}
}

// ProbeNow synchronously probes every replica once, applying the usual
// ejection/readmission accounting. The prober goroutine calls it on its
// ticker; tests call it directly for deterministic health transitions.
func (r *Router) ProbeNow() {
	var wg sync.WaitGroup
	for si, st := range r.shards {
		for ri := range st.reps {
			wg.Add(1)
			go func(si, ri int, st *shardState) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), r.opts.AttemptTimeout)
				defer cancel()
				if err := r.tr.Ready(ctx, r.topo.Shards[si].Replicas[ri]); err == nil {
					if st.recordSuccess(ri) {
						r.met.readmits.Add(1)
					}
				} else if st.recordFailure(ri, r.opts.EjectAfter) {
					r.met.ejections.Add(1)
				}
			}(si, ri, st)
		}
	}
	wg.Wait()
}
