package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault is the injected failure behavior of one replica. Fields compose in
// the order Kill → ErrRate → Latency → Hang → inner call, so a killed
// replica fails instantly (a dead process refuses connections immediately)
// while a hung one consumes the caller's full patience.
type Fault struct {
	// Kill makes every call fail immediately, like a SIGKILLed process
	// refusing connections.
	Kill bool
	// ErrRate is the probability in [0, 1] that a call fails immediately
	// with an injected error (flaky replica).
	ErrRate float64
	// Latency is added before the call proceeds (slow replica); the wait
	// respects context cancellation.
	Latency time.Duration
	// Hang blocks the call until its context is canceled or times out
	// (stuck replica — the case WriteTimeout and attempt timeouts exist
	// for).
	Hang bool
}

// ErrInjected is the base error of ErrRate-injected failures.
var ErrInjected = errors.New("injected fault")

// FaultStats counts what one replica observed through the fault wrapper.
type FaultStats struct {
	Calls    int // calls that reached this replica (search + ready)
	Injected int // calls failed by Kill or ErrRate
	Canceled int // calls that ended on context cancellation (hung/slow losers)
	Served   int // calls passed through to the inner transport
}

// FaultTransport wraps a Transport with per-replica fault injection so
// every router failure mode — timeouts, retries, hedges, ejections, whole
// shards down — is unit-testable without real processes. Deterministic:
// ErrRate draws come from a seeded RNG. Safe for concurrent use.
type FaultTransport struct {
	inner Transport

	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Fault
	stats  map[string]*FaultStats
}

// NewFaultTransport wraps inner; seed drives the ErrRate coin flips.
func NewFaultTransport(inner Transport, seed int64) *FaultTransport {
	return &FaultTransport{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seed)),
		faults: make(map[string]Fault),
		stats:  make(map[string]*FaultStats),
	}
}

// SetFault replaces addr's fault behavior.
func (ft *FaultTransport) SetFault(addr string, f Fault) {
	ft.mu.Lock()
	ft.faults[addr] = f
	ft.mu.Unlock()
}

// Kill flips addr's kill switch on: every call fails instantly until
// Revive.
func (ft *FaultTransport) Kill(addr string) {
	ft.mu.Lock()
	f := ft.faults[addr]
	f.Kill = true
	ft.faults[addr] = f
	ft.mu.Unlock()
}

// Revive clears addr's faults entirely (a restarted, healthy process).
func (ft *FaultTransport) Revive(addr string) {
	ft.mu.Lock()
	delete(ft.faults, addr)
	ft.mu.Unlock()
}

// Stats returns a snapshot of addr's observed-call counters.
func (ft *FaultTransport) Stats(addr string) FaultStats {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if st := ft.stats[addr]; st != nil {
		return *st
	}
	return FaultStats{}
}

// admit applies addr's pre-call faults, returning an error for injected
// failures. It holds no lock while waiting.
func (ft *FaultTransport) admit(ctx context.Context, addr string) error {
	ft.mu.Lock()
	f := ft.faults[addr]
	st := ft.stats[addr]
	if st == nil {
		st = &FaultStats{}
		ft.stats[addr] = st
	}
	st.Calls++
	injected := false
	if f.Kill {
		injected = true
	} else if f.ErrRate > 0 && ft.rng.Float64() < f.ErrRate {
		injected = true
	}
	if injected {
		st.Injected++
	}
	ft.mu.Unlock()

	if injected {
		if f.Kill {
			return fmt.Errorf("%s: connection refused (killed): %w", addr, ErrInjected)
		}
		return fmt.Errorf("%s: %w", addr, ErrInjected)
	}
	if f.Latency > 0 {
		if !sleepCtx(ctx, f.Latency) {
			ft.record(addr, func(st *FaultStats) { st.Canceled++ })
			return ctx.Err()
		}
	}
	if f.Hang {
		<-ctx.Done()
		ft.record(addr, func(st *FaultStats) { st.Canceled++ })
		return ctx.Err()
	}
	ft.record(addr, func(st *FaultStats) { st.Served++ })
	return nil
}

func (ft *FaultTransport) record(addr string, f func(*FaultStats)) {
	ft.mu.Lock()
	st := ft.stats[addr]
	if st == nil {
		st = &FaultStats{}
		ft.stats[addr] = st
	}
	f(st)
	ft.mu.Unlock()
}

// Search implements Transport with addr's faults applied first.
func (ft *FaultTransport) Search(ctx context.Context, addr string, req *SearchRequest) (*SearchResponse, error) {
	if err := ft.admit(ctx, addr); err != nil {
		return nil, err
	}
	return ft.inner.Search(ctx, addr, req)
}

// Ready implements Transport with addr's faults applied first.
func (ft *FaultTransport) Ready(ctx context.Context, addr string) error {
	if err := ft.admit(ctx, addr); err != nil {
		return err
	}
	return ft.inner.Ready(ctx, addr)
}
