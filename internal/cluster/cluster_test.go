package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/vecmath"
)

const nShards = 3

func addr(si int, r byte) string { return fmt.Sprintf("s%d%c", si, r) }

// testTopo is 3 shards x 2 replicas with IDOffset si*100, so global-id
// translation is exercised by every merge check.
func testTopo() cluster.Topology {
	var t cluster.Topology
	for si := 0; si < nShards; si++ {
		t.Shards = append(t.Shards, cluster.Shard{
			Replicas: []string{addr(si, 'a'), addr(si, 'b')},
			IDOffset: int32(si * 100),
		})
	}
	return t
}

// memShard is one shard's canned answer; both replicas serve it identically,
// so a result's content depends only on which shards contributed.
type memShard struct {
	ids   []int32
	dists []float32
}

type memTransport struct {
	shards map[string]memShard
}

func (m *memTransport) Search(ctx context.Context, a string, req *cluster.SearchRequest) (*cluster.SearchResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh, ok := m.shards[a]
	if !ok {
		return nil, fmt.Errorf("memTransport: unknown replica %s", a)
	}
	n := min(req.K, len(sh.ids))
	return &cluster.SearchResponse{
		IDs:   slices.Clone(sh.ids[:n]),
		Dists: slices.Clone(sh.dists[:n]),
	}, nil
}

func (m *memTransport) Ready(ctx context.Context, a string) error {
	if _, ok := m.shards[a]; !ok {
		return fmt.Errorf("memTransport: unknown replica %s", a)
	}
	return ctx.Err()
}

// testMem interleaves distances across shards (shard si's j-th neighbor has
// dist j*3+si), so the global top-k draws from every shard.
func testMem() *memTransport {
	m := &memTransport{shards: map[string]memShard{}}
	for si := 0; si < nShards; si++ {
		var sh memShard
		for j := 0; j < 8; j++ {
			sh.ids = append(sh.ids, int32(j))
			sh.dists = append(sh.dists, float32(j*nShards+si))
		}
		m.shards[addr(si, 'a')] = sh
		m.shards[addr(si, 'b')] = sh
	}
	return m
}

// want is the expected merge over the shards not listed in missing.
func want(k int, missing ...int) []vecmath.Neighbor {
	var all []vecmath.Neighbor
	for si := 0; si < nShards; si++ {
		if slices.Contains(missing, si) {
			continue
		}
		for j := 0; j < 8; j++ {
			all = append(all, vecmath.Neighbor{ID: int32(si*100 + j), Dist: float32(j*nShards + si)})
		}
	}
	slices.SortFunc(all, vecmath.CompareNeighbors)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func checkNeighbors(t *testing.T, got, exp []vecmath.Neighbor) {
	t.Helper()
	if !slices.Equal(got, exp) {
		t.Fatalf("merged result mismatch:\n got %v\nwant %v", got, exp)
	}
}

func fastOpts() cluster.Options {
	return cluster.Options{
		AttemptTimeout: 100 * time.Millisecond,
		MaxAttempts:    4,
		RetryBackoff:   time.Millisecond,
		EjectAfter:     2,
		Seed:           7,
	}
}

func newRouter(t *testing.T, ft *cluster.FaultTransport, opts cluster.Options) *cluster.Router {
	t.Helper()
	rt, err := cluster.New(testTopo(), ft, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestRouterMergesAllShards(t *testing.T) {
	ft := cluster.NewFaultTransport(testMem(), 1)
	rt := newRouter(t, ft, fastOpts())
	ns, res, err := rt.Search(context.Background(), nil, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.Missing) > 0 {
		t.Fatalf("healthy cluster returned degraded result: %+v", res)
	}
	checkNeighbors(t, ns, want(6))
	m := rt.Metrics()
	if m.Queries != 1 || m.Attempts != 3 || m.Retries != 0 {
		t.Fatalf("metrics = %+v, want 1 query / 3 attempts / 0 retries", m)
	}
}

// TestRetryAfterFault drives the retry loop through each failure mode of the
// first-preference replica: the query must fail over to the sibling replica
// and still return the complete merge.
func TestRetryAfterFault(t *testing.T) {
	cases := []struct {
		name     string
		fault    cluster.Fault
		injected bool // fails via injected error (vs timeout/cancel)
	}{
		{"killed", cluster.Fault{Kill: true}, true},
		{"flaky", cluster.Fault{ErrRate: 1}, true},
		{"hung", cluster.Fault{Hang: true}, false},                      // attempt timeout -> retry
		{"slow", cluster.Fault{Latency: 300 * time.Millisecond}, false}, // slower than AttemptTimeout
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ft := cluster.NewFaultTransport(testMem(), 1)
			ft.SetFault(addr(0, 'a'), tc.fault)
			rt := newRouter(t, ft, fastOpts())
			ns, res, err := rt.Search(context.Background(), nil, 6, 32)
			if err != nil {
				t.Fatalf("query did not survive fault: %v", err)
			}
			if res.Degraded {
				t.Fatalf("one bad replica must not degrade the result: %+v", res)
			}
			checkNeighbors(t, ns, want(6))
			m := rt.Metrics()
			if m.Retries != 1 || m.Attempts != 4 {
				t.Fatalf("metrics = %+v, want exactly 1 retry / 4 attempts", m)
			}
			st := ft.Stats(addr(0, 'a'))
			if tc.injected && st.Injected == 0 {
				t.Fatalf("fault never injected: %+v", st)
			}
			if !tc.injected && st.Canceled == 0 {
				t.Fatalf("hung/slow call was not canceled by the attempt timeout: %+v", st)
			}
		})
	}
}

func TestAllReplicasDownPolicy(t *testing.T) {
	kill := func(ft *cluster.FaultTransport, si int) {
		ft.Kill(addr(si, 'a'))
		ft.Kill(addr(si, 'b'))
	}

	t.Run("fail", func(t *testing.T) {
		ft := cluster.NewFaultTransport(testMem(), 1)
		kill(ft, 1)
		opts := fastOpts()
		opts.Partial = cluster.PartialFail
		rt := newRouter(t, ft, opts)
		_, _, err := rt.Search(context.Background(), nil, 6, 32)
		var sde *cluster.ShardsDownError
		if !errors.As(err, &sde) {
			t.Fatalf("want *ShardsDownError, got %v", err)
		}
		if !slices.Equal(sde.Shards, []int{1}) {
			t.Fatalf("down shards = %v, want [1]", sde.Shards)
		}
		if m := rt.Metrics(); m.FailedQueries != 1 || m.ShardFailures != 1 {
			t.Fatalf("metrics = %+v, want 1 failed query / 1 shard failure", m)
		}
	})

	t.Run("serve", func(t *testing.T) {
		ft := cluster.NewFaultTransport(testMem(), 1)
		kill(ft, 1)
		opts := fastOpts()
		opts.Partial = cluster.PartialServe
		rt := newRouter(t, ft, opts)
		ns, res, err := rt.Search(context.Background(), nil, 6, 32)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Degraded || !slices.Equal(res.Missing, []int{1}) {
			t.Fatalf("result = %+v, want degraded with missing [1]", res)
		}
		checkNeighbors(t, ns, want(6, 1))
		if m := rt.Metrics(); m.Degraded != 1 {
			t.Fatalf("metrics = %+v, want 1 degraded", m)
		}
	})

	t.Run("all-shards-down", func(t *testing.T) {
		ft := cluster.NewFaultTransport(testMem(), 1)
		for si := 0; si < nShards; si++ {
			kill(ft, si)
		}
		opts := fastOpts()
		opts.Partial = cluster.PartialServe // even serve cannot answer from nothing
		rt := newRouter(t, ft, opts)
		_, _, err := rt.Search(context.Background(), nil, 6, 32)
		var sde *cluster.ShardsDownError
		if !errors.As(err, &sde) {
			t.Fatalf("want *ShardsDownError, got %v", err)
		}
		if !slices.Equal(sde.Shards, []int{0, 1, 2}) {
			t.Fatalf("down shards = %v, want [0 1 2]", sde.Shards)
		}
	})
}

// TestHedgeWinAndLoserCanceled makes the first-preference replica slow so
// the hedged request to its sibling answers first; the slow loser must be
// canceled and must NOT be charged a health failure.
func TestHedgeWinAndLoserCanceled(t *testing.T) {
	ft := cluster.NewFaultTransport(testMem(), 1)
	ft.SetFault(addr(0, 'a'), cluster.Fault{Latency: 300 * time.Millisecond})
	opts := fastOpts()
	opts.AttemptTimeout = 2 * time.Second // latency is cancel-bound, not deadline-bound
	opts.HedgeAfter = 20 * time.Millisecond
	rt := newRouter(t, ft, opts)

	start := time.Now()
	ns, res, err := rt.Search(context.Background(), nil, 6, 32)
	if err != nil || res.Degraded {
		t.Fatalf("err=%v res=%+v", err, res)
	}
	checkNeighbors(t, ns, want(6))
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Fatalf("hedge did not rescue latency: query took %v", el)
	}
	m := rt.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 || m.Retries != 0 {
		t.Fatalf("metrics = %+v, want exactly 1 hedge / 1 hedge win / 0 retries", m)
	}

	// The loser's cancellation lands asynchronously after Search returns.
	deadline := time.Now().Add(2 * time.Second)
	for ft.Stats(addr(0, 'a')).Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow loser never canceled: %+v", ft.Stats(addr(0, 'a')))
		}
		time.Sleep(time.Millisecond)
	}
	for _, rh := range rt.Health()[0] {
		if !rh.Healthy || rh.ConsecFails != 0 {
			t.Fatalf("canceled hedge loser was charged a failure: %+v", rh)
		}
	}
}

// TestEjectionAndReadmission walks a replica through the health lifecycle:
// repeated query failures eject it, queries then stop touching it, and after
// the fault clears a probe readmits it. A second replica is ejected purely
// by the active prober.
func TestEjectionAndReadmission(t *testing.T) {
	ft := cluster.NewFaultTransport(testMem(), 1)
	ft.SetFault(addr(0, 'a'), cluster.Fault{ErrRate: 1})
	rt := newRouter(t, ft, fastOpts()) // EjectAfter: 2, no background prober

	// Primaries rotate, so within a few queries s0a accumulates 2
	// consecutive failures and is ejected.
	for i := 0; i < 4; i++ {
		if _, res, err := rt.Search(context.Background(), nil, 6, 32); err != nil || res.Degraded {
			t.Fatalf("query %d: err=%v res=%+v", i, err, res)
		}
	}
	if h := rt.Health()[0][0]; h.Healthy || h.Ejections != 1 {
		t.Fatalf("s0a not ejected after repeated failures: %+v", h)
	}
	// One ejected replica does not dent readiness: the shard is still
	// covered by its sibling.
	if full, partial := rt.Ready(); !full || !partial {
		t.Fatalf("Ready() = %v,%v with the shard still covered, want full=true partial=true", full, partial)
	}
	ft.SetFault(addr(0, 'b'), cluster.Fault{ErrRate: 1})
	rt.ProbeNow()
	rt.ProbeNow() // EjectAfter=2: now the whole shard is uncovered
	if full, partial := rt.Ready(); full || !partial {
		t.Fatalf("Ready() = %v,%v with shard 0 fully ejected, want full=false partial=true", full, partial)
	}
	ft.Revive(addr(0, 'b'))
	rt.ProbeNow()

	// Ejected replicas are deprioritized: further queries succeed on the
	// sibling without touching s0a.
	before := ft.Stats(addr(0, 'a')).Calls
	for i := 0; i < 4; i++ {
		if _, _, err := rt.Search(context.Background(), nil, 6, 32); err != nil {
			t.Fatal(err)
		}
	}
	if after := ft.Stats(addr(0, 'a')).Calls; after != before {
		t.Fatalf("ejected replica still receiving queries: %d -> %d calls", before, after)
	}

	// Recovery: fault cleared, the next probe readmits it.
	ft.Revive(addr(0, 'a'))
	rt.ProbeNow()
	if h := rt.Health()[0][0]; !h.Healthy {
		t.Fatalf("revived replica not readmitted by probe: %+v", h)
	}
	if full, _ := rt.Ready(); !full {
		t.Fatal("Ready() not full after readmission")
	}
	if m := rt.Metrics(); m.Readmits < 1 {
		t.Fatalf("metrics = %+v, want >=1 readmit", m)
	}

	// The prober also ejects on its own, with the same streak threshold.
	ft.Kill(addr(2, 'b'))
	rt.ProbeNow()
	if h := rt.Health()[2][1]; !h.Healthy {
		t.Fatalf("one failed probe must not eject (EjectAfter=2): %+v", h)
	}
	rt.ProbeNow()
	if h := rt.Health()[2][1]; h.Healthy {
		t.Fatalf("killed replica not ejected after %d failed probes", 2)
	}
}

func TestTopologyValidateAndLoad(t *testing.T) {
	if err := (cluster.Topology{}).Validate(); err == nil {
		t.Fatal("empty topology validated")
	}
	if err := (cluster.Topology{Shards: []cluster.Shard{{}}}).Validate(); err == nil {
		t.Fatal("shard with no replicas validated")
	}
	if err := (cluster.Topology{Shards: []cluster.Shard{{Replicas: []string{""}}}}).Validate(); err == nil {
		t.Fatal("empty replica address validated")
	}

	path := filepath.Join(t.TempDir(), "topo.json")
	blob := []byte(`{"shards": [
		{"replicas": ["127.0.0.1:8081", "127.0.0.1:8082"], "id_offset": 0},
		{"replicas": ["127.0.0.1:8083"], "id_offset": 4000}
	]}`)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := cluster.LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Shards) != 2 || topo.Shards[1].IDOffset != 4000 || len(topo.Shards[0].Replicas) != 2 {
		t.Fatalf("loaded topology = %+v", topo)
	}
	if _, err := cluster.LoadTopology(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing topology file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"shards": [`), 0o644)
	if _, err := cluster.LoadTopology(bad); err == nil {
		t.Fatal("malformed topology parsed")
	}
}

func TestParsePartialPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want cluster.PartialPolicy
	}{{"fail", cluster.PartialFail}, {"serve", cluster.PartialServe}} {
		got, err := cluster.ParsePartialPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePartialPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := cluster.ParsePartialPolicy("shrug"); err == nil {
		t.Fatal("bogus policy parsed")
	}
}

// TestConcurrentKillRestartStress is the race-enabled chaos invariant from
// the issue: while replicas are killed and revived at random under
// concurrent query load, every answer must be either complete (equal to the
// full merge) or explicitly degraded (equal to the merge of exactly the
// surviving shards it names) — never silently partial.
func TestConcurrentKillRestartStress(t *testing.T) {
	ft := cluster.NewFaultTransport(testMem(), 42)
	rt, err := cluster.New(testTopo(), ft, cluster.Options{
		AttemptTimeout: 50 * time.Millisecond,
		MaxAttempts:    3,
		RetryBackoff:   time.Millisecond,
		HedgeAfter:     5 * time.Millisecond,
		Partial:        cluster.PartialServe,
		EjectAfter:     2,
		ProbeInterval:  10 * time.Millisecond,
		Seed:           99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(5))
		for {
			select {
			case <-stop:
				return
			default:
			}
			a := addr(rng.Intn(nShards), byte('a'+rng.Intn(2)))
			if rng.Intn(2) == 0 {
				ft.Kill(a)
			} else {
				ft.Revive(a)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	full := want(6)
	deadline := time.Now().Add(400 * time.Millisecond)
	var qwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			var buf []vecmath.Neighbor
			for time.Now().Before(deadline) {
				var res cluster.Result
				var err error
				buf, res, err = rt.SearchAppend(context.Background(), buf[:0], nil, 6, 32)
				if err != nil {
					var sde *cluster.ShardsDownError
					if !errors.As(err, &sde) || len(sde.Shards) == 0 {
						t.Errorf("unexpected error type: %v", err)
						return
					}
					continue
				}
				if res.Degraded {
					if len(res.Missing) == 0 {
						t.Error("degraded result names no missing shards")
						return
					}
					if exp := want(6, res.Missing...); !slices.Equal(buf, exp) {
						t.Errorf("degraded result (missing %v) = %v, want %v", res.Missing, buf, exp)
						return
					}
				} else if !slices.Equal(buf, full) {
					t.Errorf("silently partial result: %v, want %v", buf, full)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	chaos.Wait()
	if m := rt.Metrics(); m.Queries == 0 {
		t.Fatal("stress ran no queries")
	}
}
