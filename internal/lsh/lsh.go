// Package lsh implements multi-probe locality-sensitive hashing over random
// hyperplane projections, standing in for FALCONN in the paper's Figure 8
// comparison. Each of T tables hashes a vector to a B-bit signature from B
// random hyperplanes; a query probes its own bucket plus the buckets within
// small Hamming distance, ranked by probe quality (distance of the query to
// the flipped hyperplanes), and re-ranks every collected candidate by exact
// distance.
package lsh

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/vecmath"
)

// Params configures Build.
type Params struct {
	Tables int // number of hash tables (T)
	Bits   int // hyperplanes per table (B); buckets = 2^B
	Seed   int64
}

// DefaultParams returns settings suitable for test-scale data.
func DefaultParams() Params {
	return Params{Tables: 8, Bits: 12, Seed: 1}
}

// Index is a built LSH structure.
type Index struct {
	Base   vecmath.Matrix
	tables []table
	bits   int
}

type table struct {
	planes  []([]float32) // bits hyperplane normals
	buckets map[uint32][]int32
}

// Build hashes every base vector into all tables.
func Build(base vecmath.Matrix, p Params) (*Index, error) {
	if base.Rows == 0 {
		return nil, fmt.Errorf("lsh: empty base set")
	}
	if p.Tables <= 0 {
		p.Tables = 8
	}
	if p.Bits <= 0 || p.Bits > 30 {
		p.Bits = 12
	}
	rng := rand.New(rand.NewSource(p.Seed))
	idx := &Index{Base: base, bits: p.Bits}
	for t := 0; t < p.Tables; t++ {
		tb := table{buckets: make(map[uint32][]int32)}
		for b := 0; b < p.Bits; b++ {
			plane := make([]float32, base.Dim)
			for j := range plane {
				plane[j] = float32(rng.NormFloat64())
			}
			tb.planes = append(tb.planes, plane)
		}
		for i := 0; i < base.Rows; i++ {
			h, _ := tb.hash(base.Row(i))
			tb.buckets[h] = append(tb.buckets[h], int32(i))
		}
		idx.tables = append(idx.tables, tb)
	}
	return idx, nil
}

// hash returns the signature of v and the per-bit margins (signed distances
// to each hyperplane), which drive multi-probe ordering.
func (t *table) hash(v []float32) (uint32, []float32) {
	var h uint32
	margins := make([]float32, len(t.planes))
	for b, plane := range t.planes {
		d := vecmath.Dot(v, plane)
		margins[b] = d
		if d >= 0 {
			h |= 1 << uint(b)
		}
	}
	return h, margins
}

// Search probes up to probes buckets per table (the query's own bucket plus
// its lowest-margin single-bit flips), collects candidates and re-ranks them
// exactly. counter counts only the exact re-ranking distances, matching how
// Figure 8 counts "distance calculations". Returns the k nearest candidates
// found.
func (x *Index) Search(q []float32, k, probes int, counter *vecmath.Counter) []vecmath.Neighbor {
	if probes < 1 {
		probes = 1
	}
	seen := make(map[int32]struct{})
	top := vecmath.NewTopK(k)
	for ti := range x.tables {
		t := &x.tables[ti]
		h, margins := t.hash(q)
		// Probe sequence: own bucket, then single-bit flips ascending by
		// |margin| (the cheapest perturbations first), then the best
		// two-bit flip combinations.
		for _, bucket := range probeSequence(h, margins, probes) {
			for _, id := range t.buckets[bucket] {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				top.Push(id, counter.L2(q, x.Base.Row(int(id))))
			}
		}
	}
	return top.Result()
}

// probeSequence returns up to probes bucket ids to visit for signature h.
func probeSequence(h uint32, margins []float32, probes int) []uint32 {
	out := []uint32{h}
	if probes == 1 {
		return out
	}
	type flip struct {
		bits uint32
		cost float32
	}
	var flips []flip
	for b := range margins {
		m := margins[b]
		if m < 0 {
			m = -m
		}
		flips = append(flips, flip{bits: 1 << uint(b), cost: m})
	}
	sort.Slice(flips, func(i, j int) bool { return flips[i].cost < flips[j].cost })
	// Single-bit probes.
	for _, f := range flips {
		if len(out) >= probes {
			return out
		}
		out = append(out, h^f.bits)
	}
	// Two-bit probes over the cheapest pairs.
	for i := 0; i < len(flips) && len(out) < probes; i++ {
		for j := i + 1; j < len(flips) && len(out) < probes; j++ {
			out = append(out, h^flips[i].bits^flips[j].bits)
		}
	}
	return out
}

// IndexBytes reports the hash-table footprint: 4 bytes per stored id per
// table plus bucket-map overhead approximated at 8 bytes per bucket.
func (x *Index) IndexBytes() int64 {
	var total int64
	for _, t := range x.tables {
		for _, b := range t.buckets {
			total += int64(len(b))*4 + 8
		}
		total += int64(len(t.planes)) * int64(x.Base.Dim) * 4
	}
	return total
}
