package lsh

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestSearchFindsNeighbors(t *testing.T) {
	ds, err := dataset.SIFTLike(dataset.Config{N: 1000, Queries: 40, GTK: 10, Dim: 32, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds.Base, Params{Tables: 10, Bits: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]int32, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		res := idx.Search(ds.Queries.Row(qi), 10, 16, nil)
		ids := make([]int32, len(res))
		for i, n := range res {
			ids[i] = n.ID
		}
		got[qi] = ids
	}
	if recall := dataset.MeanRecall(got, ds.GT, 10); recall < 0.5 {
		t.Errorf("LSH recall@10 = %.3f, want >= 0.5 with generous probing", recall)
	}
}

func TestMoreProbesMoreRecall(t *testing.T) {
	ds, err := dataset.SIFTLike(dataset.Config{N: 800, Queries: 30, GTK: 10, Dim: 32, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds.Base, Params{Tables: 6, Bits: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(probes int) float64 {
		got := make([][]int32, ds.Queries.Rows)
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res := idx.Search(ds.Queries.Row(qi), 10, probes, nil)
			ids := make([]int32, len(res))
			for i, n := range res {
				ids[i] = n.ID
			}
			got[qi] = ids
		}
		return dataset.MeanRecall(got, ds.GT, 10)
	}
	lo, hi := recallAt(1), recallAt(24)
	if hi < lo {
		t.Errorf("recall fell with more probes: %.3f -> %.3f", lo, hi)
	}
}

func TestCounterCountsRerankOnly(t *testing.T) {
	ds, err := dataset.SIFTLike(dataset.Config{N: 500, Queries: 1, GTK: 1, Dim: 32, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(ds.Base, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var c vecmath.Counter
	idx.Search(ds.Queries.Row(0), 5, 4, &c)
	if c.Count() == 0 {
		t.Error("no distances counted")
	}
	if c.Count() > uint64(ds.Base.Rows) {
		t.Errorf("counted %d > n; candidates must be deduplicated", c.Count())
	}
}

func TestProbeSequence(t *testing.T) {
	margins := []float32{0.5, -0.1, 2.0}
	h := uint32(0b101)
	seq := probeSequence(h, margins, 4)
	if len(seq) != 4 {
		t.Fatalf("len = %d, want 4", len(seq))
	}
	if seq[0] != h {
		t.Error("first probe must be the home bucket")
	}
	// Cheapest flip is bit 1 (|m|=0.1), then bit 0 (0.5), then bit 2 (2.0).
	if seq[1] != h^0b010 || seq[2] != h^0b001 || seq[3] != h^0b100 {
		t.Errorf("probe order wrong: %03b", seq)
	}
}

func TestProbeSequenceTwoBit(t *testing.T) {
	margins := []float32{0.1, 0.2}
	seq := probeSequence(0, margins, 4)
	if len(seq) != 4 {
		t.Fatalf("len = %d, want 4 (home + 2 single + 1 double)", len(seq))
	}
	if seq[3] != 0b11 {
		t.Errorf("two-bit probe = %b, want 11", seq[3])
	}
}

func TestValidationAndDefaults(t *testing.T) {
	if _, err := Build(vecmath.Matrix{Dim: 3}, DefaultParams()); err == nil {
		t.Error("expected error on empty base")
	}
	base := vecmath.NewMatrix(10, 4)
	idx, err := Build(base, Params{Tables: 0, Bits: 99})
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.tables) != 8 || idx.bits != 12 {
		t.Errorf("defaults not applied: tables=%d bits=%d", len(idx.tables), idx.bits)
	}
	if idx.IndexBytes() <= 0 {
		t.Error("IndexBytes must be positive")
	}
}
