package chunkio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestRoundTrip covers sizes below, at, and across chunk boundaries.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, chunk - 1, chunk, chunk + 1, 3*chunk + 5} {
		fs := make([]float32, n)
		is := make([]int32, n)
		for i := range fs {
			fs[i] = rng.Float32()*2e6 - 1e6
			is[i] = rng.Int31() - 1<<30
		}
		if n > 0 {
			fs[0] = float32(math.NaN()) // bit patterns must survive, not values
			is[0] = -1
		}
		var buf bytes.Buffer
		if err := WriteFloat32s(&buf, fs); err != nil {
			t.Fatal(err)
		}
		if err := WriteInt32s(&buf, is); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != 8*n {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, buf.Len(), 8*n)
		}
		gotF := make([]float32, n)
		gotI := make([]int32, n)
		if err := ReadFloat32s(&buf, gotF); err != nil {
			t.Fatal(err)
		}
		if err := ReadInt32s(&buf, gotI); err != nil {
			t.Fatal(err)
		}
		for i := range fs {
			if math.Float32bits(gotF[i]) != math.Float32bits(fs[i]) || gotI[i] != is[i] {
				t.Fatalf("n=%d index %d: round trip changed values", n, i)
			}
		}
	}
}

// TestTruncated: a short stream must error, not return partial data.
func TestTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInt32s(&buf, []int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if err := ReadInt32s(bytes.NewReader(short), make([]int32, 3)); err == nil {
		t.Fatal("ReadInt32s accepted a truncated stream")
	}
	if err := ReadFloat32s(bytes.NewReader(nil), make([]float32, 1)); err == nil {
		t.Fatal("ReadFloat32s accepted an empty stream")
	}
}
