package chunkio

import (
	"bytes"
	"math"
	"testing"
)

// FuzzChunkio treats arbitrary bytes as a chunked scalar stream: reads of
// any requested length against any input must either fill dst completely
// or fail with the truncation error — never panic, never partially decode
// silently — and whatever decodes must re-encode to the exact bytes
// consumed (the codec is a bijection on 4-byte groups).
func FuzzChunkio(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteFloat32s(&seed, []float32{0, 1, -1, math.Pi, float32(math.Inf(1))}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes(), uint16(5))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3}, uint16(1))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(16))
	// Cross a chunk boundary: n > 16384 scalars forces a second buffer fill.
	f.Add(bytes.Repeat([]byte{7}, (chunk+2)*4), uint16(chunk+2))

	f.Fuzz(func(t *testing.T, data []byte, n uint16) {
		want := int(n)
		ints := make([]int32, want)
		err := ReadInt32s(bytes.NewReader(data), ints)
		if len(data) < want*4 {
			if err == nil {
				t.Fatalf("decoded %d int32s from %d bytes", want, len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("read %d int32s from %d bytes: %v", want, len(data), err)
		}
		var out bytes.Buffer
		if err := WriteInt32s(&out, ints); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:want*4]) {
			t.Fatal("int32 round trip diverged from input bytes")
		}

		floats := make([]float32, want)
		if err := ReadFloat32s(bytes.NewReader(data), floats); err != nil {
			t.Fatalf("float read failed where int read succeeded: %v", err)
		}
		out.Reset()
		if err := WriteFloat32s(&out, floats); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:want*4]) {
			t.Fatal("float32 round trip diverged from input bytes")
		}
	})
}
