// Package chunkio is the one chunked little-endian scalar codec every
// persistence path shares: float32 matrices (index bundles), int32 id maps
// (shard partitions, relayout remap tables) and quantizer bounds all encode
// through a reused 64 KiB buffer, so writing a million values costs a
// handful of buffer-boundary crossings instead of one Write per scalar.
// Readers consume exactly the bytes their writer produced, so sections
// embed in larger files; nothing here adds its own buffering.
package chunkio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// chunk is the number of 4-byte scalars encoded per I/O operation (64 KiB).
const chunk = 16384

// write32 encodes vals through one reused chunk buffer.
func write32[T any](w io.Writer, vals []T, bits func(T) uint32) error {
	buf := make([]byte, chunk*4)
	for off := 0; off < len(vals); off += chunk {
		end := min(off+chunk, len(vals))
		n := 0
		for _, v := range vals[off:end] {
			binary.LittleEndian.PutUint32(buf[n:], bits(v))
			n += 4
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return fmt.Errorf("chunkio: write: %w", err)
		}
	}
	return nil
}

// read32 decodes exactly len(dst) scalars written by write32.
func read32[T any](r io.Reader, dst []T, from func(uint32) T) error {
	buf := make([]byte, chunk*4)
	for off := 0; off < len(dst); off += chunk {
		end := min(off+chunk, len(dst))
		b := buf[:(end-off)*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("chunkio: truncated stream: %w", err)
		}
		for i := off; i < end; i++ {
			dst[i] = from(binary.LittleEndian.Uint32(b[(i-off)*4:]))
		}
	}
	return nil
}

// WriteFloat32s encodes vals little-endian in 64 KiB chunks.
func WriteFloat32s(w io.Writer, vals []float32) error {
	return write32(w, vals, math.Float32bits)
}

// ReadFloat32s fills dst with float32s written by WriteFloat32s.
func ReadFloat32s(r io.Reader, dst []float32) error {
	return read32(r, dst, math.Float32frombits)
}

// WriteInt32s encodes vals little-endian in 64 KiB chunks.
func WriteInt32s(w io.Writer, vals []int32) error {
	return write32(w, vals, func(v int32) uint32 { return uint32(v) })
}

// ReadInt32s fills dst with int32s written by WriteInt32s.
func ReadInt32s(r io.Reader, dst []int32) error {
	return read32(r, dst, func(u uint32) int32 { return int32(u) })
}
