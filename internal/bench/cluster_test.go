package bench

import (
	"context"
	"io"
	"os/exec"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

func TestBestOf(t *testing.T) {
	calls := 0
	d := bestOf(3, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Fatalf("bestOf ran f %d times, want 3", calls)
	}
	if d < time.Millisecond {
		t.Fatalf("bestOf returned %v, below the per-pass floor", d)
	}
}

// TestClusterKillOneReplica is the real-process smoke test: boot a 3x2
// cluster of nsgserve processes, SIGKILL one replica under query load
// (every query must still be answered completely via the sibling), then
// kill the sibling and check the serve policy degrades explicitly.
func TestClusterKillOneReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	ds, err := dataset.SIFTLike(dataset.Config{N: 1200, Queries: 20, GTK: 10, Dim: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := startLocalCluster(io.Discard, ds, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.stop()
	tr := cluster.NewHTTPTransport()
	if err := lc.waitReady(tr, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	rt, err := cluster.New(lc.topo, tr, cluster.Options{
		AttemptTimeout: 2 * time.Second,
		RetryBackoff:   2 * time.Millisecond,
		Partial:        cluster.PartialServe,
		EjectAfter:     2,
		ProbeInterval:  100 * time.Millisecond,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const k = 5
	var buf []vecmath.Neighbor
	query := func(qi int) (cluster.Result, error) {
		var res cluster.Result
		var qerr error
		buf, res, qerr = rt.SearchAppend(context.Background(), buf[:0], ds.Queries.Row(qi%ds.Queries.Rows), k, 40)
		return res, qerr
	}

	for qi := 0; qi < ds.Queries.Rows; qi++ {
		res, err := query(qi)
		if err != nil || res.Degraded {
			t.Fatalf("healthy cluster query %d: err=%v res=%+v", qi, err, res)
		}
		if len(buf) != k {
			t.Fatalf("healthy cluster query %d returned %d neighbors, want %d", qi, len(buf), k)
		}
	}

	// The acceptance gate: after SIGKILL of one replica, zero failed
	// queries — the sibling absorbs every one, results stay complete.
	if err := lc.kill(0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		res, err := query(i)
		if err != nil {
			t.Fatalf("query %d failed after single-replica SIGKILL: %v", i, err)
		}
		if res.Degraded {
			t.Fatalf("query %d degraded after single-replica SIGKILL: %+v", i, res)
		}
	}

	// Whole shard down: serve policy answers degraded, names shard 0, and
	// returns no ids from shard 0's row span.
	if err := lc.kill(0, 1); err != nil {
		t.Fatal(err)
	}
	shard0End := int32(ds.Base.Rows / 3)
	sawDegraded := false
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		res, err := query(0)
		if err != nil {
			t.Fatalf("serve-policy query errored with 2/3 shards up: %v", err)
		}
		if !res.Degraded {
			continue
		}
		if len(res.Missing) != 1 || res.Missing[0] != 0 {
			t.Fatalf("degraded result missing = %v, want [0]", res.Missing)
		}
		for _, nb := range buf {
			if nb.ID < shard0End {
				t.Fatalf("degraded result contains id %d from the dead shard 0", nb.ID)
			}
		}
		sawDegraded = true
		break
	}
	if !sawDegraded {
		t.Fatal("whole-shard kill never produced a degraded answer")
	}
}
