package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestDiskServingWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.04 // clamps to the 256-point floor; keep the smoke test fast
	c.Queries = 20
	var buf bytes.Buffer
	if err := DiskServing(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Disk-resident serving", "bare file open", "mmap-noverify", "wrote BENCH_disk.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("disk table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_disk.json")
	if err != nil {
		t.Fatalf("BENCH_disk.json not written: %v", err)
	}
	var res DiskResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_disk.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.K != 10 || res.Dim != 128 {
		t.Errorf("implausible record: n=%d dim=%d k=%d", res.N, res.Dim, res.K)
	}
	if len(res.Points) != len(diskVariants()) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(diskVariants()))
	}

	// The acceptance criteria the experiment exists to demonstrate: mapped
	// recall is byte-parity with heap (delta well under the 0.001 budget),
	// and the mapped variants reject mutation while heap-load does not.
	if res.ParityDelta > 0.001 {
		t.Errorf("mapped recall delta %.4f exceeds 0.001 parity budget", res.ParityDelta)
	}
	var heapOpen, noverifyOpen float64
	for _, pt := range res.Points {
		if pt.QPS <= 0 || pt.Recall <= 0 {
			t.Errorf("%s: degenerate point %+v", pt.Variant, pt)
		}
		if pt.OpenMs <= 0 || pt.FirstQueryMs < pt.OpenMs {
			t.Errorf("%s: inconsistent timings open=%.4f first=%.4f", pt.Variant, pt.OpenMs, pt.FirstQueryMs)
		}
		wantRO := pt.Variant != "heap-load"
		if pt.ReadOnly != wantRO {
			t.Errorf("%s: read_only=%v, want %v", pt.Variant, pt.ReadOnly, wantRO)
		}
		switch pt.Variant {
		case "heap-load":
			heapOpen = pt.OpenMs
		case "mmap-noverify":
			noverifyOpen = pt.OpenMs
		}
	}
	// The structural claim behind the 5x gate: the no-verify mapped open
	// never decodes the index, so it must not be slower than the stream
	// decode. (The absolute 5x-of-floor ratio is asserted at full scale by
	// the committed baseline, not here — at 256 points both paths are
	// microseconds and the ratio is all noise.)
	if noverifyOpen > heapOpen*2 {
		t.Errorf("mmap-noverify open %.4fms slower than 2x heap decode %.4fms", noverifyOpen, heapOpen)
	}
	if res.RestartRatio <= 0 {
		t.Errorf("restart ratio not recorded: %+v", res)
	}
}
