package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// This file measures live-update serving: mixed read/write workloads
// against a snapshot+delta nsg.Index, quantifying what the non-blocking
// architecture buys. For each write fraction the harness runs concurrent
// reader goroutines (recording every search's latency) while a writer
// streams inserts paced to the read progress, then flushes the maintainer
// and measures recall on the final point set against an exact ground truth
// — and against a batch-built index over the same points, which is the
// quality bar the incremental path must hold. cmd/bench -exp live prints
// the sweep and records it to BENCH_live.json.
//
// The acceptance framing: search p99 under a 1% write stream should stay
// within 2x of the read-only p99 at equal L (the pre-live architecture
// stalled every reader for every graph mutation), and post-drain recall
// should be within 0.01 of the batch build.

// LivePoint is one write-fraction measurement.
type LivePoint struct {
	WriteFrac   float64 `json:"write_frac"`   // inserts per search
	Searches    int     `json:"searches"`     // timed searches across all readers
	Inserts     int     `json:"inserts"`      // inserts issued during the window
	P50Ms       float64 `json:"p50_ms"`       // median search latency
	P99Ms       float64 `json:"p99_ms"`       // 99th-percentile search latency
	MeanMs      float64 `json:"mean_ms"`      // mean search latency
	QPS         float64 `json:"qps"`          // aggregate search throughput
	Recall      float64 `json:"recall"`       // recall@k of the drained live index
	BatchRecall float64 `json:"batch_recall"` // recall@k of a batch build over the same points
	Publishes   uint64  `json:"publishes"`    // snapshots published during the window
	MaxPending  int     `json:"max_pending"`  // deepest delta observed
	DrainMs     float64 `json:"drain_ms"`     // Flush duration once the load stopped
}

// LiveResult is the serialized record of one -exp live run.
type LiveResult struct {
	Dataset string      `json:"dataset"`
	N       int         `json:"n"` // base points before the write stream
	Dim     int         `json:"dim"`
	Queries int         `json:"queries"`
	K       int         `json:"k"`
	L       int         `json:"l"`
	Readers int         `json:"readers"`
	Points  []LivePoint `json:"points"`
}

// liveWriteFracs are the measured write fractions: read-only, 1% (the
// acceptance point) and 10% (heavy streaming).
var liveWriteFracs = []float64{0, 0.01, 0.10}

// LiveServing runs the live-update experiment on the SIFT-like suite.
func LiveServing(w io.Writer, c ExpConfig) error {
	const (
		k       = 10
		l       = 60
		readers = 4
	)
	searches := 2000
	if c.Scale > 1 {
		searches = int(float64(searches) * c.Scale)
	}
	n := c.n(6000)
	maxInserts := int(float64(searches) * liveWriteFracs[len(liveWriteFracs)-1])
	// One generator call covers base + the insert stream, so inserted
	// points follow the base distribution and the final point set is a
	// prefix-free slice of one matrix.
	ds, err := dataset.SIFTLike(dataset.Config{N: n + maxInserts, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	full := ds.Base

	res := LiveResult{Dataset: "SIFT-like", N: n, Dim: full.Dim, Queries: ds.Queries.Rows, K: k, L: l, Readers: readers}
	fmt.Fprintf(w, "live updates on SIFT-like (base n=%d, dim=%d, k=%d, L=%d, %d readers, %d searches/run)\n",
		n, full.Dim, k, l, readers, searches)
	fmt.Fprintf(w, "%-10s %9s %9s %9s %9s %9s %10s %12s %10s %9s\n",
		"write%", "p50 ms", "p99 ms", "mean ms", "QPS", "inserts", "publishes", "max pending", "recall", "batch")

	for _, wf := range liveWriteFracs {
		pt, err := measureLivePoint(full, ds.Queries, n, searches, readers, wf, k, l, c.Seed)
		if err != nil {
			return err
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "%-10.2f %9.4f %9.4f %9.4f %9.0f %9d %10d %12d %10.4f %9.4f\n",
			wf*100, pt.P50Ms, pt.P99Ms, pt.MeanMs, pt.QPS, pt.Inserts, pt.Publishes, pt.MaxPending, pt.Recall, pt.BatchRecall)
	}

	// The acceptance readout: write pressure must not stall readers, and
	// the drained graph must hold batch-build quality.
	base := res.Points[0]
	for _, pt := range res.Points[1:] {
		ratio := pt.P99Ms / base.P99Ms
		fmt.Fprintf(w, "p99 at %.0f%% writes = %.2fx read-only p99; recall %+.4f vs batch build\n",
			pt.WriteFrac*100, ratio, pt.Recall-pt.BatchRecall)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_live.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_live.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_live.json")
	return nil
}

// measureLivePoint runs one mixed workload: readers cycle the query set
// concurrently while a writer streams full.Row(n0+i) inserts paced to the
// read progress (wf inserts per completed search).
func measureLivePoint(full, queries vecmath.Matrix, n0, searches, readers int, wf float64, k, l int, seed int64) (LivePoint, error) {
	pt := LivePoint{WriteFrac: wf, Searches: searches}
	inserts := int(float64(searches) * wf)
	nTotal := n0 + inserts

	opts := nsg.DefaultOptions()
	opts.SearchL = l
	opts.Seed = seed
	idx, err := nsg.BuildFromFlat(full.Slice(0, n0).Clone().Data, full.Dim, opts)
	if err != nil {
		return pt, err
	}
	defer idx.Close()
	if err := idx.EnableLiveUpdates(nsg.LiveOptions{MaxPending: 256, PublishInterval: 50 * time.Millisecond}); err != nil {
		return pt, err
	}

	latencies := make([]float64, searches) // ms, one slot per search
	var next atomic.Int64                  // search slots handed to readers
	var done atomic.Int64                  // searches completed (paces the writer)
	statsBefore := idx.MaintenanceStats()

	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= searches {
					return
				}
				q := queries.Row(i % queries.Rows)
				t0 := time.Now()
				ids, _ := idx.SearchWithPool(q, k, l)
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				if len(ids) == 0 {
					panic("bench: empty live search result")
				}
				done.Add(1)
			}
		}()
	}
	// Writer: insert i once i/wf searches have completed, spreading the
	// write stream evenly across the read window.
	writerErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < inserts; i++ {
			target := int64(float64(i) / wf)
			for done.Load() < target {
				time.Sleep(20 * time.Microsecond)
			}
			if _, err := idx.Add(full.Row(n0 + i)); err != nil {
				writerErr <- err
				return
			}
			if p := idx.MaintenanceStats().Pending; p > pt.MaxPending {
				pt.MaxPending = p
			}
		}
	}()
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-writerErr:
		return pt, err
	default:
	}

	flushStart := time.Now()
	idx.Flush()
	pt.DrainMs = float64(time.Since(flushStart).Microseconds()) / 1000
	statsAfter := idx.MaintenanceStats()
	pt.Inserts = inserts
	pt.Publishes = statsAfter.Publishes - statsBefore.Publishes
	if statsAfter.Pending != 0 || statsAfter.SnapshotRows != nTotal {
		return pt, fmt.Errorf("bench: live index did not drain: %+v", statsAfter)
	}

	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	pt.P50Ms = percentile(sorted, 0.50)
	pt.P99Ms = percentile(sorted, 0.99)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	pt.MeanMs = sum / float64(len(sorted))
	pt.QPS = float64(searches) / elapsed.Seconds()

	// Quality on the final point set: the drained live index vs a batch
	// build over the same rows, both against the exact ground truth.
	sub := full.Slice(0, nTotal)
	gt := dataset.GroundTruth(sub, queries, k)
	pt.Recall = liveRecall(idx, queries, gt, k, l)
	batch, err := nsg.BuildFromFlat(sub.Clone().Data, full.Dim, opts)
	if err != nil {
		return pt, err
	}
	pt.BatchRecall = liveRecall(batch, queries, gt, k, l)
	return pt, nil
}

// liveRecall scores recall@k for idx over the query matrix.
func liveRecall(idx *nsg.Index, queries vecmath.Matrix, gt [][]int32, k, l int) float64 {
	got := make([][]int32, queries.Rows)
	for qi := 0; qi < queries.Rows; qi++ {
		got[qi], _ = idx.SearchWithPool(queries.Row(qi), k, l)
	}
	return dataset.MeanRecall(got, gt, k)
}

// percentile reads the p-quantile from an ascending-sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
