package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestMQBatchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.04 // clamps to the 256-point floor; keep the smoke test fast
	c.Queries = 20
	var buf bytes.Buffer
	if err := MQBatch(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fused multi-query traversal", "cohort", "shared", "ident", "wrote BENCH_mqbatch.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("mqbatch table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_mqbatch.json")
	if err != nil {
		t.Fatalf("BENCH_mqbatch.json not written: %v", err)
	}
	var res MQBatchResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_mqbatch.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.K != 10 || res.Dim != 128 {
		t.Errorf("implausible record: n=%d dim=%d k=%d", res.N, res.Dim, res.K)
	}
	if want := 2 * len(mqbatchCohorts) * len(mqbatchEfforts); len(res.Points) != want {
		t.Errorf("got %d points, want %d", len(res.Points), want)
	}
	if want := 2 * len(mqbatchCohorts); len(res.Targets) != want {
		t.Errorf("got %d targets, want %d", len(res.Targets), want)
	}
	solo := map[string]float64{} // variant -> solo dist_comps at L=60
	for _, pt := range res.Points {
		if pt.Recall < 0 || pt.Recall > 1 || pt.QPS <= 0 {
			t.Errorf("implausible point: %+v", pt)
		}
		if pt.Hops <= 0 || pt.DistComps <= 0 || pt.BytesPerHop <= 0 {
			t.Errorf("work stats missing from point: %+v", pt)
		}
		// The correctness half of the experiment: every cell must report
		// byte-identical results against the solo runs.
		if !pt.Identical {
			t.Errorf("%s cohort=%d L=%d: results not identical to solo", pt.Variant, pt.Cohort, pt.Effort)
		}
		switch {
		case pt.Cohort <= 1:
			if pt.SharedHitRate != 0 {
				t.Errorf("solo point reports shared rate %.3f", pt.SharedHitRate)
			}
			if pt.Effort == 60 {
				solo[pt.Variant] = pt.DistComps
			}
		case pt.SharedHitRate < 0 || pt.SharedHitRate >= 1:
			t.Errorf("cohort=%d shared rate %.3f out of range", pt.Cohort, pt.SharedHitRate)
		}
	}
	// Dense rounds buy the shared gather with extra pair distances, never
	// fewer: a fused cohort's per-query distance count is >= solo's.
	for _, pt := range res.Points {
		if pt.Cohort > 1 && pt.Effort == 60 && pt.DistComps < solo[pt.Variant]-1e-9 {
			t.Errorf("%s cohort=%d: dist comps %.1f below solo %.1f", pt.Variant, pt.Cohort, pt.DistComps, solo[pt.Variant])
		}
	}
}

func TestMQBatchExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["mqbatch"]; !ok {
		t.Error("experiment \"mqbatch\" not registered")
	}
}
