package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graphutil"
	"repro/internal/knngraph"
	"repro/internal/vecmath"
)

// Ablation prints the DESIGN.md §5 ablation table: each NSG design choice
// is toggled in isolation on one SIFT-like dataset and scored by recall and
// distance computations at a fixed search budget.
func Ablation(w io.Writer, c ExpConfig) error {
	n := c.n(6000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 40
	knn, err := knngraph.BuildExact(ds.Base, k)
	if err != nil {
		return err
	}
	idx, _, err := core.NSGBuild(knn, ds.Base, core.BuildParams{L: 60, M: 30, Seed: c.Seed})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "Ablations on SIFT-like (n=%d), recall@10 and distance computations at l=60\n", n)
	fmt.Fprintf(w, "%-34s %9s %12s %10s %10s\n", "variant", "recall", "dist/query", "avg deg", "QPS")

	score := func(name string, g *graphutil.Graph, search func(q []float32, counter *vecmath.Counter) []vecmath.Neighbor) {
		var counter vecmath.Counter
		got := make([][]int32, ds.Queries.Rows)
		start := time.Now()
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res := search(ds.Queries.Row(qi), &counter)
			ids := make([]int32, len(res))
			for i, nb := range res {
				ids[i] = nb.ID
			}
			got[qi] = ids
		}
		qps := float64(ds.Queries.Rows) / time.Since(start).Seconds()
		avgDeg := 0.0
		if g != nil {
			avgDeg = g.Degrees().Avg
		}
		fmt.Fprintf(w, "%-34s %9.4f %12.0f %10.1f %10.0f\n", name,
			dataset.MeanRecall(got, ds.GT, 10),
			float64(counter.Count())/float64(ds.Queries.Rows), avgDeg, qps)
	}

	// 1. Full NSG (reference): flat fixed-stride layout, reused context.
	ctx := core.NewSearchContext()
	score("NSG (full Algorithm 2)", idx.Graph, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
		return idx.SearchCtx(ctx, q, 10, 60, cnt)
	})

	// 1b. Layout/allocation ablation: same graph and entry point through
	// the ragged adjacency lists with a freshly allocated context per query
	// (the seed's allocation behavior). Recall and distance counts are
	// identical by construction; only QPS moves.
	score("NSG + ragged lists, fresh scratch", idx.Graph, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
		fresh := core.NewSearchContext()
		return core.SearchOnGraphListCtx(fresh, idx.Graph.Adj, ds.Base, q, []int32{idx.Navigating}, 10, 60, cnt, nil).Neighbors
	})

	// 2. Entry point: random instead of the navigating node, same graph.
	rngState := int64(12345)
	score("NSG + random entry", idx.Graph, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		start := int32(uint64(rngState) % uint64(n))
		return core.SearchOnGraph(idx.Graph.Adj, ds.Base, q, []int32{start}, 10, 60, cnt, nil).Neighbors
	})

	// 3. Candidates: kNN-only (NSG-Naive), same edge rule and cap.
	naive, err := core.NSGNaiveBuild(knn, ds.Base, 30, c.Seed)
	if err != nil {
		return err
	}
	score("kNN-only candidates (NSG-Naive)", naive.Graph, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
		return naive.Search(q, 10, 60, cnt)
	})

	// 4. Edge rule: plain truncation of the kNN lists at the same cap.
	trunc := graphutil.New(knn.N())
	for i := range knn.Adj {
		lim := 30
		if lim > len(knn.Adj[i]) {
			lim = len(knn.Adj[i])
		}
		trunc.Adj[i] = knn.Adj[i][:lim]
	}
	score("kNN truncation (no MRNG rule)", trunc, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
		return core.SearchOnGraph(trunc.Adj, ds.Base, q, []int32{idx.Navigating}, 10, 60, cnt, nil).Neighbors
	})

	// 5. Degree cap sweep.
	for _, m := range []int{10, 20, 40} {
		v, _, err := core.NSGBuild(knn, ds.Base, core.BuildParams{L: 60, M: m, Seed: c.Seed})
		if err != nil {
			return err
		}
		score(fmt.Sprintf("NSG with degree cap m=%d", m), v.Graph, func(q []float32, cnt *vecmath.Counter) []vecmath.Neighbor {
			return v.Search(q, 10, 60, cnt)
		})
	}
	return nil
}
