package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knngraph"
	"repro/internal/vecmath"
	"repro/internal/vecmath/quant"
)

// This file measures the quantized serving paths against the float32 path
// on one graph: recall, QPS and bytes touched per hop for every combination
// of {float32, SQ8, int4} x {with, without rerank} x {with, without the BFS
// cache relayout}. The comparison prices the independent levers — the 4x
// (SQ8) and 8x (packed int4) code shrinks and the locality permutation —
// and the rerank's recall repair, the measured counterpart of the paper's
// memory-bandwidth serving argument (Section 6). cmd/bench -exp quant
// prints the sweep and records it to BENCH_quant.json.

// QuantPoint is one (variant, effort) measurement.
type QuantPoint struct {
	Variant     string  `json:"variant"`       // float32 | sq8 | sq8+rerank | int4 | int4+rerank, each ±relayout
	Effort      int     `json:"effort"`        // search pool L
	Recall      float64 `json:"recall"`        // mean recall@k vs exact ground truth
	QPS         float64 `json:"qps"`           // single-client queries/second
	MsPerQ      float64 `json:"ms_per_query"`  // mean single-query response time
	Hops        float64 `json:"hops"`          // mean greedy expansions
	DistComps   float64 `json:"dist_comps"`    // mean distance evaluations (code + exact)
	BytesPerHop float64 `json:"bytes_per_hop"` // vector + adjacency bytes gathered per expansion
	AllocsPerQ  float64 `json:"allocs_per_q"`  // heap allocations per steady-state query
}

// QuantTarget reports the QPS each variant reaches at the target recall —
// the matched-recall comparison the acceptance gate uses.
type QuantTarget struct {
	Variant string  `json:"variant"`
	Target  float64 `json:"target_recall"`
	Effort  int     `json:"effort"`
	QPS     float64 `json:"qps"`
	Reached bool    `json:"reached"`
}

// QuantResult is the serialized record of one -exp quant run.
type QuantResult struct {
	Dataset string        `json:"dataset"`
	N       int           `json:"n"`
	Dim     int           `json:"dim"`
	Queries int           `json:"queries"`
	K       int           `json:"k"`
	Points  []QuantPoint  `json:"points"`
	Targets []QuantTarget `json:"targets"`
}

// quantEfforts is the L sweep per variant.
var quantEfforts = []int{10, 20, 30, 40, 60, 100, 160}

// quantVariant names one search configuration over a prepared index.
type quantVariant struct {
	name   string
	relaid bool       // serve the relayouted twin
	mode   quant.Mode // code representation the expansion gathers
	rerank bool       // exact rerank of the final pool
}

func quantVariants() []quantVariant {
	return []quantVariant{
		{name: "float32", relaid: false},
		{name: "float32+relayout", relaid: true},
		{name: "sq8", mode: quant.ModeSQ8},
		{name: "sq8+relayout", mode: quant.ModeSQ8, relaid: true},
		{name: "sq8+rerank", mode: quant.ModeSQ8, rerank: true},
		{name: "sq8+rerank+relayout", mode: quant.ModeSQ8, rerank: true, relaid: true},
		{name: "int4", mode: quant.ModeInt4},
		{name: "int4+relayout", mode: quant.ModeInt4, relaid: true},
		{name: "int4+rerank", mode: quant.ModeInt4, rerank: true},
		{name: "int4+rerank+relayout", mode: quant.ModeInt4, rerank: true, relaid: true},
	}
}

// Quantized runs the quantization experiment on the 8k-point SIFT-like
// suite (scaled by the config).
func Quantized(w io.Writer, c ExpConfig) error {
	n := c.n(8000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 10
	res := QuantResult{Dataset: "SIFT-like", N: ds.Base.Rows, Dim: ds.Base.Dim, Queries: ds.Queries.Rows, K: k}

	// Deterministic builds of the same graph (identical seeds): one per
	// {build order, relayout} x {SQ8, int4} cell, since an index carries
	// exactly one code representation. The float32 variants search the SQ8
	// twins' float rows, which are identical across all four.
	buildOne := func(relayout bool, mode quant.Mode) (*core.NSG, error) {
		base := ds.Base.Clone()
		kp := knngraph.DefaultParams(20)
		kp.Seed = c.Seed
		knn, err := knngraph.BuildNNDescent(base, kp)
		if err != nil {
			return nil, err
		}
		idx, _, err := core.NSGBuild(knn, base, core.BuildParams{L: 50, M: 30, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		if relayout {
			idx.Relayout()
		}
		if mode == quant.ModeInt4 {
			err = idx.EnableQuantization4(nil)
		} else {
			err = idx.EnableQuantization(nil)
		}
		if err != nil {
			return nil, err
		}
		return idx, nil
	}
	type cell struct {
		relaid bool
		mode   quant.Mode
	}
	indexes := map[cell]*core.NSG{}
	for _, relaid := range []bool{false, true} {
		for _, mode := range []quant.Mode{quant.ModeSQ8, quant.ModeInt4} {
			idx, err := buildOne(relaid, mode)
			if err != nil {
				return err
			}
			indexes[cell{relaid, mode}] = idx
		}
	}

	fmt.Fprintf(w, "quantized search (SQ8, packed int4) vs float32 on SIFT-like subset (n=%d, dim=%d, k=%d)\n", ds.Base.Rows, ds.Base.Dim, k)
	fmt.Fprintf(w, "%-20s %8s %9s %9s %12s %8s %12s %11s %10s\n",
		"variant", "effort", "recall", "QPS", "ms/query", "hops", "dist/query", "bytes/hop", "allocs/q")

	for _, v := range quantVariants() {
		mode := v.mode
		if mode == quant.ModeNone {
			mode = quant.ModeSQ8 // float32 search ignores the codes
		}
		idx := indexes[cell{v.relaid, mode}]
		target := QuantTarget{Variant: v.name, Target: 0.99}
		for _, effort := range quantEfforts {
			pt := measureQuantPoint(idx, ds, v, k, effort)
			res.Points = append(res.Points, pt)
			fmt.Fprintf(w, "%-20s %8d %9.4f %9.0f %12.4f %8.1f %12.0f %11.0f %10.2f\n",
				v.name, effort, pt.Recall, pt.QPS, pt.MsPerQ, pt.Hops, pt.DistComps, pt.BytesPerHop, pt.AllocsPerQ)
			if !target.Reached && pt.Recall >= target.Target {
				target.Reached = true
				target.Effort = effort
				target.QPS = pt.QPS
			}
		}
		res.Targets = append(res.Targets, target)
	}

	fmt.Fprintf(w, "QPS at recall>=0.99 (the acceptance gate's matched-recall comparison):\n")
	var floatQPS float64
	for _, tg := range res.Targets {
		if !tg.Reached {
			fmt.Fprintf(w, "  %-20s     (0.99 unreachable in the effort sweep)\n", tg.Variant)
			continue
		}
		fmt.Fprintf(w, "  %-20s %9.0f (L=%d)", tg.Variant, tg.QPS, tg.Effort)
		if tg.Variant == "float32" {
			floatQPS = tg.QPS
		} else if floatQPS > 0 {
			fmt.Fprintf(w, "  %.2fx float32", tg.QPS/floatQPS)
		}
		fmt.Fprintln(w)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_quant.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_quant.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_quant.json")
	return nil
}

// measureQuantPoint scores one (index, variant, effort) cell with a reused
// context: recall over the query set, latency/QPS, work stats, and the
// bytes-per-hop accounting.
func measureQuantPoint(idx *core.NSG, ds dataset.Dataset, v quantVariant, k, effort int) QuantPoint {
	pt := QuantPoint{Variant: v.name, Effort: effort}
	ctx := core.NewSearchContext()
	var counter vecmath.Counter
	search := func(q []float32) core.SearchResult {
		if v.mode == quant.ModeNone {
			return idx.SearchFloatWithHopsCtx(ctx, q, k, effort, &counter)
		}
		return idx.SearchQuantizedCtx(ctx, q, k, effort, &counter, v.rerank)
	}
	for i := 0; i < 4 && i < ds.Queries.Rows; i++ { // warm the context
		search(ds.Queries.Row(i))
	}

	// Result rows are preallocated so the timed/counted loop contains only
	// the search itself — otherwise the harness's own slice allocations
	// would show up in the allocs-per-query column.
	got := make([][]int32, ds.Queries.Rows)
	for qi := range got {
		got[qi] = make([]int32, 0, k)
	}
	var hops float64
	counter.Reset()
	allocStart := heapAllocs()
	start := time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		r := search(ds.Queries.Row(qi))
		ids := got[qi][:0]
		for _, nb := range r.Neighbors {
			ids = append(ids, nb.ID)
		}
		got[qi] = ids
		hops += float64(r.Hops)
	}
	elapsed := time.Since(start)
	allocs := heapAllocs() - allocStart
	// Two more timed passes, keeping the fastest, so one scheduling hiccup
	// does not misprice a cell of the comparison table.
	if el := bestOf(2, func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			search(ds.Queries.Row(qi))
		}
	}); el < elapsed {
		elapsed = el
	}

	q := float64(ds.Queries.Rows)
	dists := float64(counter.Count()) / q / 3 // counted across all three passes
	pt.Recall = dataset.MeanRecall(got, ds.GT, k)
	pt.QPS = q / elapsed.Seconds()
	pt.MsPerQ = elapsed.Seconds() * 1000 / q
	pt.Hops = hops / q
	pt.DistComps = dists
	pt.AllocsPerQ = float64(allocs) / q

	// Bytes gathered per expansion: every counted evaluation touches one
	// vector row (1 byte/dim for SQ8 codes, half that for packed int4
	// nibbles, 4 bytes/dim for floats; a rerank re-touches its pool in
	// float), plus the expanded node's fixed-stride adjacency row. This is
	// the quantity the code shrinks and the relayout both attack.
	dim := float64(ds.Base.Dim)
	codeBytes := dim // SQ8: one byte per dimension
	if v.mode == quant.ModeInt4 {
		codeBytes = float64(quant.Stride4(ds.Base.Dim)) // two dims per byte
	}
	adjBytes := float64(idx.FlatView().Stride) * 4
	perQuery := adjBytes * (hops / q)
	switch {
	case v.mode == quant.ModeNone:
		perQuery += dists * dim * 4
	case v.rerank:
		exact := float64(min(effort, ds.Base.Rows)) // the reranked pool
		perQuery += (dists-exact)*codeBytes + exact*dim*4
	default:
		perQuery += dists * codeBytes
	}
	if h := hops / q; h > 0 {
		pt.BytesPerHop = perQuery / h
	}
	return pt
}
