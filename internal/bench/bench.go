// Package bench is the experiment harness: it builds every index on the
// synthetic stand-ins for the paper's datasets and regenerates each table
// and figure of the evaluation section (Tables 1-5, Figures 6-12) as text
// rows. cmd/bench is the front end; bench_test.go wires the same runs into
// testing.B.
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/vecmath"
)

// SearchFunc answers one query: k neighbors under a method-specific effort
// parameter (graph pool size, LSH probes, IVF nprobe, tree checks...).
type SearchFunc func(q []float32, k, effort int, counter *vecmath.Counter) []vecmath.Neighbor

// Method is a named searcher with the effort values to sweep.
type Method struct {
	Name    string
	Search  SearchFunc
	Efforts []int
}

// SweepPoint is one point on a recall/QPS curve.
type SweepPoint struct {
	Effort    int
	Recall    float64
	QPS       float64
	DistComps float64 // average distance computations per query
	AvgTimeMS float64
}

// RecallSweep runs the method over all its effort values on the query set,
// single-threaded (the paper's search protocol), returning one point per
// effort level.
func RecallSweep(m Method, queries vecmath.Matrix, gt [][]int32, k int) []SweepPoint {
	points := make([]SweepPoint, 0, len(m.Efforts))
	for _, effort := range m.Efforts {
		var counter vecmath.Counter
		got := make([][]int32, queries.Rows)
		start := time.Now()
		for qi := 0; qi < queries.Rows; qi++ {
			res := m.Search(queries.Row(qi), k, effort, &counter)
			ids := make([]int32, len(res))
			for i, n := range res {
				ids[i] = n.ID
			}
			got[qi] = ids
		}
		elapsed := time.Since(start)
		nq := float64(queries.Rows)
		points = append(points, SweepPoint{
			Effort:    effort,
			Recall:    dataset.MeanRecall(got, gt, k),
			QPS:       nq / elapsed.Seconds(),
			DistComps: float64(counter.Count()) / nq,
			AvgTimeMS: elapsed.Seconds() * 1000 / nq,
		})
	}
	return points
}

// QPSAtRecall interpolates the sweep to report QPS at a target recall, the
// paper's headline comparison. Returns ok=false if the method never reaches
// the target.
func QPSAtRecall(points []SweepPoint, target float64) (float64, bool) {
	sorted := append([]SweepPoint{}, points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Recall < sorted[j].Recall })
	for i, p := range sorted {
		if p.Recall >= target {
			if i == 0 {
				return p.QPS, true
			}
			prev := sorted[i-1]
			if p.Recall == prev.Recall {
				return p.QPS, true
			}
			frac := (target - prev.Recall) / (p.Recall - prev.Recall)
			return prev.QPS + frac*(p.QPS-prev.QPS), true
		}
	}
	return 0, false
}

// DistCompsAtRecall interpolates the sweep to report distance computations
// per query at a target recall (the Figure 8 metric).
func DistCompsAtRecall(points []SweepPoint, target float64) (float64, bool) {
	sorted := append([]SweepPoint{}, points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Recall < sorted[j].Recall })
	for i, p := range sorted {
		if p.Recall >= target {
			if i == 0 || p.Recall == sorted[i-1].Recall {
				return p.DistComps, true
			}
			prev := sorted[i-1]
			frac := (target - prev.Recall) / (p.Recall - prev.Recall)
			return prev.DistComps + frac*(p.DistComps-prev.DistComps), true
		}
	}
	return 0, false
}

// FitPowerLaw fits y = c·x^b by least squares in log-log space and returns
// the exponent b with the fit's R². The scaling figures (9, 10, 11, 12)
// report these exponents.
func FitPowerLaw(xs, ys []float64) (exponent, r2 float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), 0
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	if len(lx) < 2 {
		return math.NaN(), 0
	}
	n := float64(len(lx))
	var sx, sy, sxx, sxy, syy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
		syy += ly[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), 0
	}
	b := (n*sxy - sx*sy) / den
	// R² of the linear fit in log space.
	a := (sy - b*sx) / n
	var ssRes, ssTot float64
	meanY := sy / n
	for i := range lx {
		pred := a + b*lx[i]
		ssRes += (ly[i] - pred) * (ly[i] - pred)
		ssTot += (ly[i] - meanY) * (ly[i] - meanY)
	}
	if ssTot == 0 {
		return b, 1
	}
	return b, 1 - ssRes/ssTot
}

// FormatBytes renders a byte count the way the paper's Table 2 does (MB).
func FormatBytes(b int64) string {
	mb := float64(b) / (1 << 20)
	if mb >= 1000 {
		return fmt.Sprintf("%.1fe3 MB", mb/1000)
	}
	return fmt.Sprintf("%.1f MB", mb)
}
