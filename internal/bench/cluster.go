package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/distsearch"
	"repro/internal/vecmath"
)

// ClusterPoint is one steady-state (variant, effort) cell: the router over
// real nsgserve processes vs the single-process in-memory fan-out over the
// same data and shard count.
type ClusterPoint struct {
	Variant string  `json:"variant"` // "router" (network) or "single" (in-process)
	Shards  int     `json:"shards"`
	Effort  int     `json:"effort"`
	Recall  float64 `json:"recall"`
	QPS     float64 `json:"qps"`
	MsPerQ  float64 `json:"ms_per_query"`
}

// ClusterOverhead prices the router tier at the paper's operating point
// (the smallest effort reaching recall 0.95). A routed query pays for the
// slowest of its parallel per-shard calls no matter who issues them, so the
// router's own cost is measured against a direct client-side fan-out — the
// same parallel calls and merge with none of the retry/hedge/health
// machinery — and expressed as a fraction of single-shard call latency.
type ClusterOverhead struct {
	Effort int `json:"effort"`
	// RouterMs is the median routed per-query latency (medians, not pass
	// means, so scheduler/GC tail outliers cancel out of the comparison).
	RouterMs float64 `json:"router_ms_per_query"`
	// FanoutMs is the floor: parallel direct calls (same per-call deadline)
	// to one replica of every shard plus the same k-way merge, with no
	// robustness machinery.
	FanoutMs float64 `json:"direct_fanout_ms_per_query"`
	// ShardMs is one direct HTTP call to a single shard replica.
	ShardMs float64 `json:"single_shard_ms_per_query"`
	// OverheadFrac = (RouterMs - FanoutMs) / ShardMs: the latency the
	// router machinery adds, as a fraction of single-shard latency.
	OverheadFrac float64 `json:"overhead_frac"`
}

// ClusterChaos records the SIGKILL phase: one replica of shard 0 is killed
// mid-run and every query must still be answered completely by the sibling.
type ClusterChaos struct {
	TotalQueries   int     `json:"total_queries"`
	KillAtQuery    int     `json:"kill_at_query"`
	Errors         int     `json:"errors"`
	Degraded       int     `json:"degraded"`
	Availability   float64 `json:"availability"`
	P50BeforeMs    float64 `json:"p50_before_kill_ms"`
	MaxAfterKillMs float64 `json:"max_after_kill_ms"` // worst failover latency
	Retries        uint64  `json:"retries"`
	Hedges         uint64  `json:"hedges"`
	Ejections      uint64  `json:"ejections"`
}

// ClusterDegradedPhase records the whole-shard-down phase: with both
// replicas of shard 0 killed, a serve-policy router must answer every query
// degraded (flagging shard 0), and a fail-policy router must answer 503.
type ClusterDegradedPhase struct {
	Queries       int     `json:"queries"`
	Degraded      int     `json:"degraded"`
	Errors        int     `json:"errors"`
	MissingShard  int     `json:"missing_shard"`
	Recall        float64 `json:"recall"` // over the surviving 2/3 of the corpus
	FailPolicyErr bool    `json:"fail_policy_errored"`
}

// ClusterResult is the serialized record of one -exp cluster run.
type ClusterResult struct {
	Dataset        string               `json:"dataset"`
	N              int                  `json:"n"`
	Dim            int                  `json:"dim"`
	Queries        int                  `json:"queries"`
	K              int                  `json:"k"`
	Shards         int                  `json:"shards"`
	Replicas       int                  `json:"replicas"`
	Points         []ClusterPoint       `json:"points"`
	RecallDeltaMax float64              `json:"recall_delta_max"` // |router - single| over the sweep
	Overhead       ClusterOverhead      `json:"router_overhead"`
	Chaos          ClusterChaos         `json:"chaos"`
	DegradedPhase  ClusterDegradedPhase `json:"degraded_phase"`
}

// clusterEfforts is the steady-state L sweep.
var clusterEfforts = []int{10, 20, 40, 80, 160}

// localCluster is a real cluster on localhost: per-shard bundles on disk
// and shards x replicas nsgserve processes, each listening on an ephemeral
// port. Replicas of a shard serve the same bundle; shard si covers the
// contiguous row span [spans[si], spans[si+1]) of the corpus so its
// IDOffset recovers global ids.
type localCluster struct {
	dir   string
	topo  cluster.Topology
	procs [][]*exec.Cmd
}

// buildShardBundles builds one single-shard NSG per contiguous span of the
// corpus and saves each as a bundle nsgserve can load.
func buildShardBundles(dir string, ds dataset.Dataset, shards int, seed int64) ([]string, []int, error) {
	n, dim := ds.Base.Rows, ds.Base.Dim
	paths := make([]string, shards)
	spans := make([]int, shards+1)
	for si := 0; si < shards; si++ {
		spans[si+1] = (si + 1) * n / shards
	}
	for si := 0; si < shards; si++ {
		lo, hi := spans[si], spans[si+1]
		sub := append([]float32(nil), ds.Base.Data[lo*dim:hi*dim]...)
		opts := nsg.DefaultShardedOptions(1)
		opts.Shard.GraphK = 20
		opts.Shard.Seed = seed + int64(si)
		idx, err := nsg.BuildShardedFromFlat(sub, dim, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: build shard %d: %w", si, err)
		}
		paths[si] = filepath.Join(dir, fmt.Sprintf("shard%d.nsgd", si))
		err = idx.Save(paths[si])
		idx.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("bench: save shard %d: %w", si, err)
		}
	}
	return paths, spans, nil
}

// startReplica execs one nsgserve on an ephemeral port and parses the
// "listening on" line for the real address.
func startReplica(bin, bundle string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin, "-index", bundle, "-addr", "127.0.0.1:0")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	type scanResult struct {
		addr string
		err  error
	}
	ch := make(chan scanResult, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
				ch <- scanResult{addr: strings.TrimSpace(a)}
				// Keep draining so the child never blocks on a full pipe.
				io.Copy(io.Discard, stdout)
				return
			}
		}
		ch <- scanResult{err: fmt.Errorf("nsgserve exited before listening: %v", sc.Err())}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, "", r.err
		}
		return cmd, r.addr, nil
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("nsgserve did not start listening within 60s")
	}
}

// startLocalCluster builds the per-shard bundles, compiles nsgserve once,
// and boots shards x replicas processes. Callers must defer stop().
func startLocalCluster(w io.Writer, ds dataset.Dataset, shards, replicas int, seed int64) (*localCluster, error) {
	dir, err := os.MkdirTemp("", "nsgcluster")
	if err != nil {
		return nil, err
	}
	lc := &localCluster{dir: dir}
	bundles, spans, err := buildShardBundles(dir, ds, shards, seed)
	if err != nil {
		lc.stop()
		return nil, err
	}
	bin := filepath.Join(dir, "nsgserve")
	if out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/nsgserve").CombinedOutput(); err != nil {
		lc.stop()
		return nil, fmt.Errorf("bench: go build nsgserve: %v: %s", err, out)
	}
	lc.procs = make([][]*exec.Cmd, shards)
	for si := 0; si < shards; si++ {
		sh := cluster.Shard{IDOffset: int32(spans[si])}
		lc.procs[si] = make([]*exec.Cmd, replicas)
		for ri := 0; ri < replicas; ri++ {
			cmd, addr, err := startReplica(bin, bundles[si])
			if err != nil {
				lc.stop()
				return nil, fmt.Errorf("bench: start shard %d replica %d: %w", si, ri, err)
			}
			lc.procs[si][ri] = cmd
			sh.Replicas = append(sh.Replicas, addr)
		}
		lc.topo.Shards = append(lc.topo.Shards, sh)
	}
	fmt.Fprintf(w, "cluster up: %d shards x %d replicas (pid/addr per shard):\n", shards, replicas)
	for si, sh := range lc.topo.Shards {
		for ri, a := range sh.Replicas {
			fmt.Fprintf(w, "  shard %d replica %d: pid %-6d %s\n", si, ri, lc.procs[si][ri].Process.Pid, a)
		}
	}
	return lc, nil
}

// waitReady blocks until every replica answers /readyz (or the deadline).
func (lc *localCluster) waitReady(tr cluster.Transport, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, sh := range lc.topo.Shards {
		for _, a := range sh.Replicas {
			for {
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				err := tr.Ready(ctx, a)
				cancel()
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("bench: replica %s never ready: %w", a, err)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
	return nil
}

// kill SIGKILLs one replica process — the real thing, not an injected
// fault: the OS closes its sockets and in-flight requests die with it.
func (lc *localCluster) kill(si, ri int) error {
	p := lc.procs[si][ri]
	if p == nil {
		return fmt.Errorf("bench: shard %d replica %d already dead", si, ri)
	}
	if err := p.Process.Kill(); err != nil {
		return err
	}
	p.Wait()
	lc.procs[si][ri] = nil
	return nil
}

// stop kills every remaining process and removes the work dir.
func (lc *localCluster) stop() {
	for si := range lc.procs {
		for ri, p := range lc.procs[si] {
			if p != nil {
				p.Process.Kill()
				p.Wait()
				lc.procs[si][ri] = nil
			}
		}
	}
	os.RemoveAll(lc.dir)
}

// routerPass runs the query set once through the router, filling got (when
// non-nil) with the returned global ids per query. Any error or degraded
// answer during a steady-state pass fails the pass.
func routerPass(rt *cluster.Router, ds dataset.Dataset, k, l int, got [][]int32) error {
	var buf []vecmath.Neighbor
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		var res cluster.Result
		var err error
		buf, res, err = rt.SearchAppend(context.Background(), buf[:0], ds.Queries.Row(qi), k, l)
		if err != nil {
			return fmt.Errorf("bench: steady-state query %d: %w", qi, err)
		}
		if res.Degraded {
			return fmt.Errorf("bench: steady-state query %d answered degraded (missing %v)", qi, res.Missing)
		}
		if got != nil {
			ids := make([]int32, len(buf))
			for i, nb := range buf {
				ids[i] = nb.ID
			}
			got[qi] = ids
		}
	}
	return nil
}

// ClusterServing is the -exp cluster chaos benchmark: boot a real 3-shard x
// 2-replica nsgserve cluster, sweep the router against the single-process
// fan-out for recall parity and routing overhead, then SIGKILL one replica
// mid-run (every query must survive via the sibling) and finally the whole
// shard (the serve policy must answer degraded, the fail policy 503).
// Results go to BENCH_cluster.json; only the steady-state sweep feeds the
// CI regression baseline.
func ClusterServing(w io.Writer, c ExpConfig) error {
	if _, err := exec.LookPath("go"); err != nil {
		return fmt.Errorf("bench: -exp cluster needs the go tool to build nsgserve: %w", err)
	}
	n := c.n(12000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 10
	const shards, replicas = 3, 2
	res := ClusterResult{
		Dataset: ds.Name, N: ds.Base.Rows, Dim: ds.Base.Dim,
		Queries: ds.Queries.Rows, K: k, Shards: shards, Replicas: replicas,
	}
	fmt.Fprintf(w, "Cluster serving (%d shards x %d replicas of nsgserve) on %s (n=%d, dim=%d, k=%d)\n",
		shards, replicas, ds.Name, n, ds.Base.Dim, k)

	lc, err := startLocalCluster(w, ds, shards, replicas, c.Seed)
	if err != nil {
		return err
	}
	defer lc.stop()
	tr := cluster.NewHTTPTransport()
	if err := lc.waitReady(tr, 60*time.Second); err != nil {
		return err
	}
	rt, err := cluster.New(lc.topo, tr, cluster.Options{
		AttemptTimeout: 2 * time.Second,
		RetryBackoff:   5 * time.Millisecond,
		HedgeAfter:     25 * time.Millisecond,
		Partial:        cluster.PartialServe,
		EjectAfter:     3,
		ProbeInterval:  200 * time.Millisecond,
		Seed:           c.Seed,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	// Single-process reference: the same corpus, shard count and build
	// parameters served by the in-process fan-out.
	refOpts := nsg.DefaultShardedOptions(shards)
	refOpts.Shard.GraphK = 20
	refOpts.Shard.Seed = c.Seed
	ref, err := nsg.BuildShardedFromFlat(append([]float32(nil), ds.Base.Data...), ds.Base.Dim, refOpts)
	if err != nil {
		return err
	}
	defer ref.Close()

	// Steady-state sweep: recall parity and QPS, router vs single-process.
	fmt.Fprintf(w, "%8s %8s %9s %9s %12s\n", "variant", "effort", "recall", "QPS", "ms/query")
	q := float64(ds.Queries.Rows)
	routerMsByEffort := map[int]float64{}
	routerRecallByEffort := map[int]float64{}
	for _, effort := range clusterEfforts {
		got := make([][]int32, ds.Queries.Rows)
		for i := 0; i < 4 && i < ds.Queries.Rows; i++ { // warm pools and conns
			ref.SearchWithPool(ds.Queries.Row(i), k, effort)
		}
		elapsed := bestOf(3, func() {
			for qi := 0; qi < ds.Queries.Rows; qi++ {
				ids, _ := ref.SearchWithPool(ds.Queries.Row(qi), k, effort)
				got[qi] = ids
			}
		})
		single := ClusterPoint{
			Variant: "single", Shards: shards, Effort: effort,
			Recall: dataset.MeanRecall(got, ds.GT, k),
			QPS:    q / elapsed.Seconds(), MsPerQ: elapsed.Seconds() * 1000 / q,
		}
		res.Points = append(res.Points, single)
		fmt.Fprintf(w, "%8s %8d %9.4f %9.0f %12.4f\n", single.Variant, effort, single.Recall, single.QPS, single.MsPerQ)

		if err := routerPass(rt, ds, k, effort, got); err != nil { // warm + correctness
			return err
		}
		elapsed = bestOf(3, func() {
			if perr := routerPass(rt, ds, k, effort, nil); perr != nil && err == nil {
				err = perr
			}
		})
		if err != nil {
			return err
		}
		router := ClusterPoint{
			Variant: "router", Shards: shards, Effort: effort,
			Recall: dataset.MeanRecall(got, ds.GT, k),
			QPS:    q / elapsed.Seconds(), MsPerQ: elapsed.Seconds() * 1000 / q,
		}
		res.Points = append(res.Points, router)
		routerMsByEffort[effort] = router.MsPerQ
		routerRecallByEffort[effort] = router.Recall
		fmt.Fprintf(w, "%8s %8d %9.4f %9.0f %12.4f\n", router.Variant, effort, router.Recall, router.QPS, router.MsPerQ)
		if d := router.Recall - single.Recall; d > res.RecallDeltaMax || -d > res.RecallDeltaMax {
			if d < 0 {
				d = -d
			}
			res.RecallDeltaMax = d
		}
	}
	fmt.Fprintf(w, "max |router - single| recall over the sweep: %.4f\n", res.RecallDeltaMax)

	// Router overhead at the 95%-recall operating point. All three sides
	// (routed, direct fan-out, single shard) are timed back to back here —
	// reusing the sweep's router number would compare measurements taken
	// minutes apart, and between-phase machine variance swamps the router's
	// own cost at these latencies.
	opEffort := clusterEfforts[len(clusterEfforts)-1]
	for _, e := range clusterEfforts {
		if routerRecallByEffort[e] >= 0.95 {
			opEffort = e
			break
		}
	}
	shardAddr := lc.topo.Shards[0].Replicas[0]
	var directLat, fanoutLat, routedLat []time.Duration
	direct := func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			start := time.Now()
			_, derr := tr.Search(context.Background(), shardAddr, &cluster.SearchRequest{
				Query: ds.Queries.Row(qi), K: k, L: opEffort,
			})
			directLat = append(directLat, time.Since(start))
			if derr != nil && err == nil {
				err = derr
			}
		}
	}
	direct() // warm
	directLat = directLat[:0]
	if err != nil {
		return err
	}

	// The floor a routed query cannot beat: the same parallel per-shard
	// calls — carrying the same per-call deadline and rotating replicas
	// per query, as any load-balancing client would — and the same k-way
	// merge, with no retry/hedge/health machinery in the path. (Rotation
	// matters: on an otherwise idle host, waking the sibling process costs
	// real latency, and a floor pinned to one warm replica would charge
	// that to the router.)
	nShards := len(lc.topo.Shards)
	fanLists := make([][]vecmath.Neighbor, nShards)
	fanErrs := make([]error, nShards)
	var fanOut, fanMerged []vecmath.Neighbor
	fanout := func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			start := time.Now()
			req := &cluster.SearchRequest{Query: ds.Queries.Row(qi), K: k, L: opEffort}
			var wg sync.WaitGroup
			wg.Add(nShards)
			for si := 0; si < nShards; si++ {
				go func(si int) {
					defer wg.Done()
					cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
					defer cancel()
					reps := lc.topo.Shards[si].Replicas
					resp, derr := tr.Search(cctx, reps[qi%len(reps)], req)
					if derr != nil {
						fanErrs[si] = derr
						fanLists[si] = fanLists[si][:0]
						return
					}
					list := fanLists[si][:0]
					off := lc.topo.Shards[si].IDOffset
					for i := range resp.IDs {
						list = append(list, vecmath.Neighbor{ID: resp.IDs[i] + off, Dist: resp.Dists[i]})
					}
					fanLists[si] = list
				}(si)
			}
			wg.Wait()
			for si := 0; si < nShards; si++ {
				if fanErrs[si] != nil && err == nil {
					err = fanErrs[si]
				}
			}
			fanOut, fanMerged = distsearch.MergeInto(fanOut[:0], fanMerged, k, fanLists)
			fanoutLat = append(fanoutLat, time.Since(start))
		}
	}
	fanout() // warm
	fanoutLat = fanoutLat[:0]
	if err != nil {
		return err
	}
	routed := func() {
		var buf []vecmath.Neighbor
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			start := time.Now()
			var perr error
			buf, _, perr = rt.SearchAppend(context.Background(), buf[:0], ds.Queries.Row(qi), k, opEffort)
			routedLat = append(routedLat, time.Since(start))
			if perr != nil && err == nil {
				err = perr
			}
		}
	}
	// Interleave the three sides round-robin so slow stretches of the host
	// machine penalize all of them equally, and compare per-query medians:
	// a pass total is a mean, and at these latencies scheduler and GC tail
	// outliers swamp the router's own cost.
	for round := 0; round < 5; round++ {
		routed()
		fanout()
		direct()
		if err != nil {
			return err
		}
	}
	medianMs := func(lat []time.Duration) float64 {
		slices.Sort(lat)
		return lat[len(lat)/2].Seconds() * 1000
	}
	routedMs := medianMs(routedLat)
	fanoutMs := medianMs(fanoutLat)
	directMs := medianMs(directLat)
	res.Overhead = ClusterOverhead{
		Effort:       opEffort,
		RouterMs:     routedMs,
		FanoutMs:     fanoutMs,
		ShardMs:      directMs,
		OverheadFrac: (routedMs - fanoutMs) / directMs,
	}
	fmt.Fprintf(w, "router overhead at L=%d: %.4f ms routed vs %.4f ms direct fan-out (%+.4f ms = %.1f%% of the %.4f ms single-shard call)\n",
		opEffort, res.Overhead.RouterMs, res.Overhead.FanoutMs,
		routedMs-fanoutMs, 100*res.Overhead.OverheadFrac, res.Overhead.ShardMs)

	// Chaos phase A: SIGKILL one replica of shard 0 mid-run. The sibling
	// must absorb every query: zero errors, zero degraded answers.
	m0 := rt.Metrics()
	chaos := ClusterChaos{TotalQueries: 600, KillAtQuery: 200}
	lat := make([]time.Duration, 0, chaos.TotalQueries)
	var buf []vecmath.Neighbor
	for qi := 0; qi < chaos.TotalQueries; qi++ {
		if qi == chaos.KillAtQuery {
			if err := lc.kill(0, 0); err != nil {
				return err
			}
			fmt.Fprintf(w, "SIGKILLed shard 0 replica 0 at query %d\n", qi)
		}
		start := time.Now()
		var r cluster.Result
		buf, r, err = rt.SearchAppend(context.Background(), buf[:0], ds.Queries.Row(qi%ds.Queries.Rows), k, opEffort)
		lat = append(lat, time.Since(start))
		if err != nil {
			chaos.Errors++
			err = nil
		} else if r.Degraded {
			chaos.Degraded++
		}
	}
	before := append([]time.Duration(nil), lat[:chaos.KillAtQuery]...)
	slices.Sort(before)
	chaos.P50BeforeMs = before[len(before)/2].Seconds() * 1000
	chaos.MaxAfterKillMs = slices.Max(lat[chaos.KillAtQuery:]).Seconds() * 1000
	chaos.Availability = 1 - float64(chaos.Errors)/float64(chaos.TotalQueries)
	m1 := rt.Metrics()
	chaos.Retries = m1.Retries - m0.Retries
	chaos.Hedges = m1.Hedges - m0.Hedges
	chaos.Ejections = m1.Ejections - m0.Ejections
	res.Chaos = chaos
	fmt.Fprintf(w, "chaos: %d queries, %d errors, %d degraded (availability %.4f)\n",
		chaos.TotalQueries, chaos.Errors, chaos.Degraded, chaos.Availability)
	fmt.Fprintf(w, "chaos: p50 before kill %.3f ms, max after kill %.3f ms, %d retries, %d hedges, %d ejections\n",
		chaos.P50BeforeMs, chaos.MaxAfterKillMs, chaos.Retries, chaos.Hedges, chaos.Ejections)

	// Chaos phase B: kill the sibling too, taking shard 0 fully down. The
	// serve-policy router answers every query degraded with shard 0 listed;
	// a fail-policy router refuses with ShardsDownError.
	if err := lc.kill(0, 1); err != nil {
		return err
	}
	fmt.Fprintln(w, "SIGKILLed shard 0 replica 1: shard 0 fully down")
	dp := ClusterDegradedPhase{Queries: 100, MissingShard: -1}
	got := make([][]int32, 0, dp.Queries)
	gt := make([][]int32, 0, dp.Queries)
	for qi := 0; qi < dp.Queries; qi++ {
		var r cluster.Result
		buf, r, err = rt.SearchAppend(context.Background(), buf[:0], ds.Queries.Row(qi%ds.Queries.Rows), k, opEffort)
		if err != nil {
			dp.Errors++
			err = nil
			continue
		}
		if r.Degraded {
			dp.Degraded++
			if len(r.Missing) == 1 {
				dp.MissingShard = r.Missing[0]
			}
			ids := make([]int32, len(buf))
			for i, nb := range buf {
				ids[i] = nb.ID
			}
			got = append(got, ids)
			gt = append(gt, ds.GT[qi%ds.Queries.Rows])
		}
	}
	if len(got) > 0 {
		dp.Recall = dataset.MeanRecall(got, gt, k)
	}
	failRt, err := cluster.New(lc.topo, tr, cluster.Options{
		AttemptTimeout: time.Second,
		RetryBackoff:   2 * time.Millisecond,
		Partial:        cluster.PartialFail,
		Seed:           c.Seed,
	})
	if err != nil {
		return err
	}
	defer failRt.Close()
	var sde *cluster.ShardsDownError
	_, _, ferr := failRt.Search(context.Background(), ds.Queries.Row(0), k, opEffort)
	dp.FailPolicyErr = errors.As(ferr, &sde)
	res.DegradedPhase = dp
	fmt.Fprintf(w, "degraded phase: %d/%d answered degraded (missing shard %d), recall %.4f over survivors; fail policy errored: %v\n",
		dp.Degraded, dp.Queries, dp.MissingShard, dp.Recall, dp.FailPolicyErr)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_cluster.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_cluster.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_cluster.json")
	return nil
}
