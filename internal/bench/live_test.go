package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestLiveServingWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.04 // clamps to the 256-point floor; keep the smoke test fast
	c.Queries = 20
	var buf bytes.Buffer
	if err := LiveServing(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"live updates", "p99", "read-only p99", "vs batch build", "wrote BENCH_live.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("live table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_live.json")
	if err != nil {
		t.Fatalf("BENCH_live.json not written: %v", err)
	}
	var res LiveResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_live.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.K != 10 || res.L != 60 || res.Readers != 4 {
		t.Errorf("implausible record: %+v", res)
	}
	if len(res.Points) != len(liveWriteFracs) {
		t.Fatalf("got %d points, want %d", len(res.Points), len(liveWriteFracs))
	}
	for i, pt := range res.Points {
		if pt.WriteFrac != liveWriteFracs[i] {
			t.Errorf("point %d write_frac %v, want %v", i, pt.WriteFrac, liveWriteFracs[i])
		}
		if pt.QPS <= 0 || pt.P50Ms <= 0 || pt.P99Ms < pt.P50Ms || pt.MeanMs <= 0 {
			t.Errorf("implausible latency stats: %+v", pt)
		}
		if pt.Recall < 0.8 || pt.Recall > 1 || pt.BatchRecall < 0.8 {
			t.Errorf("implausible recall: %+v", pt)
		}
		if wantInserts := int(float64(pt.Searches) * pt.WriteFrac); pt.Inserts != wantInserts {
			t.Errorf("point %d inserts %d, want %d", i, pt.Inserts, wantInserts)
		}
		if pt.WriteFrac > 0 && pt.Publishes == 0 {
			t.Errorf("point %d: writes flowed but nothing published: %+v", i, pt)
		}
		// The drained incremental graph must hold batch-build quality —
		// the -exp live acceptance bound, also gated here at smoke scale.
		if pt.Recall < pt.BatchRecall-0.01 {
			t.Errorf("point %d: live recall %.4f more than 0.01 below batch %.4f", i, pt.Recall, pt.BatchRecall)
		}
	}
}

func TestLiveExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["live"]; !ok {
		t.Error("experiment \"live\" not registered")
	}
}
