package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/distsearch"
	"repro/internal/ivfpq"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

// ExpConfig scales the experiments. Scale 1.0 gives the default laptop-size
// runs documented in EXPERIMENTS.md at the repository root; larger values
// approach the paper's regime at proportionally larger cost (see that
// file's "Scale" section for what does and does not transfer).
type ExpConfig struct {
	Scale   float64
	Queries int
	GTK     int
	Seed    int64
}

// DefaultExpConfig returns the scale used by cmd/bench and by the local
// results table in EXPERIMENTS.md.
func DefaultExpConfig() ExpConfig {
	return ExpConfig{Scale: 1.0, Queries: 100, GTK: 100, Seed: 1}
}

func (c ExpConfig) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 256 {
		n = 256
	}
	return n
}

// DatasetSpec names one of the paper's datasets, its generator, and the
// per-dataset index parameters. The paper tunes every method per dataset by
// grid search (Section 4.1.4 and appendix J); these are the tuned values at
// reproduction scale.
type DatasetSpec struct {
	Name  string
	BaseN int // paper-equivalent size scaled by ExpConfig
	Gen   func(dataset.Config) (dataset.Dataset, error)
	Dim   int
	Suite SuiteParams
}

// StandardDatasets returns the four Table 1 datasets (SIFT1M, GIST1M,
// RAND4M, GAUSS5M stand-ins) at laptop scale. GIST-like is smaller because
// its 960 dimensions dominate runtime, mirroring how the paper's GIST
// numbers come from fewer queries.
func StandardDatasets() []DatasetSpec {
	sift := DefaultSuiteParams()
	sift.KNNK, sift.NSGL, sift.NSGM = 40, 60, 30
	gist := DefaultSuiteParams()
	// GIST's higher LID needs richer candidates, mirroring the paper's
	// larger max-out-degree (70) on GIST1M.
	gist.KNNK, gist.NSGL, gist.NSGM = 60, 100, 40
	randp := DefaultSuiteParams()
	gauss := DefaultSuiteParams()
	return []DatasetSpec{
		{Name: "SIFT1M", BaseN: 6000, Gen: dataset.SIFTLike, Dim: 128, Suite: sift},
		{Name: "GIST1M", BaseN: 1500, Gen: dataset.GISTLike, Dim: 960, Suite: gist},
		{Name: "RAND4M", BaseN: 4000, Gen: dataset.Uniform, Dim: 128, Suite: randp},
		{Name: "GAUSS5M", BaseN: 5000, Gen: dataset.Gaussian, Dim: 128, Suite: gauss},
	}
}

// genDataset materializes a spec under a config.
func genDataset(spec DatasetSpec, c ExpConfig) (dataset.Dataset, error) {
	ds, err := spec.Gen(dataset.Config{
		N:       c.n(spec.BaseN),
		Queries: c.Queries,
		GTK:     c.GTK,
		Dim:     spec.Dim,
		Seed:    c.Seed,
	})
	if err != nil {
		return ds, fmt.Errorf("bench: generate %s: %w", spec.Name, err)
	}
	ds.Name = spec.Name
	return ds, nil
}

// Table1 reproduces the dataset-information table: dimension, LID and
// counts per dataset.
func Table1(w io.Writer, c ExpConfig) error {
	fmt.Fprintln(w, "Table 1: dataset information (synthetic stand-ins)")
	fmt.Fprintf(w, "%-10s %6s %8s %12s %12s\n", "dataset", "D", "LID", "No. base", "No. query")
	for _, spec := range StandardDatasets() {
		ds, err := genDataset(spec, c)
		if err != nil {
			return err
		}
		lid := dataset.EstimateLID(ds.Base, 20, 400, c.Seed)
		fmt.Fprintf(w, "%-10s %6d %8.1f %12d %12d\n", spec.Name, ds.Base.Dim, lid, ds.Base.Rows, ds.Queries.Rows)
	}
	return nil
}

// buildAllSuites builds the per-dataset suites shared by Tables 2-4 and
// Figure 6.
func buildAllSuites(c ExpConfig, withExtra bool) (map[string]*Suite, error) {
	out := make(map[string]*Suite)
	for _, spec := range StandardDatasets() {
		ds, err := genDataset(spec, c)
		if err != nil {
			return nil, err
		}
		p := spec.Suite
		if p.KNNK == 0 {
			p = DefaultSuiteParams()
		}
		p.Seed = c.Seed
		p.WithExtra = withExtra
		s, err := BuildSuite(ds, p)
		if err != nil {
			return nil, fmt.Errorf("bench: suite %s: %w", spec.Name, err)
		}
		out[spec.Name] = s
	}
	return out, nil
}

// Table2 reproduces the graph-index statistics table: memory, AOD, MOD and
// NN% per method per dataset.
func Table2(w io.Writer, suites map[string]*Suite) {
	fmt.Fprintln(w, "Table 2: graph-based index information")
	fmt.Fprintf(w, "%-10s %-10s %12s %8s %6s %7s\n", "dataset", "algorithm", "memory", "AOD", "MOD", "NN(%)")
	for _, spec := range StandardDatasets() {
		s, ok := suites[spec.Name]
		if !ok {
			continue
		}
		for _, g := range s.Graph {
			if g.Name == "NSG-Naive" {
				continue // the paper's Table 2 lists the six main methods
			}
			fmt.Fprintf(w, "%-10s %-10s %12s %8.1f %6d %7.1f\n",
				spec.Name, displayName(g.Name), FormatBytes(g.IndexBytes), g.AOD, g.MOD, g.NNPct)
		}
	}
}

func displayName(name string) string {
	if name == "HNSW" {
		return "HNSW0"
	}
	return name
}

// Table3 reproduces the indexing-time table. NSG is reported t1+t2 (kNN
// graph time + Algorithm 2 time), matching the paper's convention.
func Table3(w io.Writer, suites map[string]*Suite) {
	fmt.Fprintln(w, "Table 3: graph indexing time")
	fmt.Fprintf(w, "%-10s %-10s %16s\n", "dataset", "algorithm", "time")
	for _, spec := range StandardDatasets() {
		s, ok := suites[spec.Name]
		if !ok {
			continue
		}
		for _, g := range s.Graph {
			if g.Name == "NSG-Naive" {
				continue
			}
			var cell string
			switch g.Name {
			case "NSG":
				cell = fmt.Sprintf("%.1fs+%.1fs", g.KNNTime.Seconds(), g.BuildTime.Seconds())
			case "KGraph":
				cell = fmt.Sprintf("%.1fs", g.KNNTime.Seconds())
			default:
				cell = fmt.Sprintf("%.1fs", g.BuildTime.Seconds())
			}
			fmt.Fprintf(w, "%-10s %-10s %16s\n", spec.Name, g.Name, cell)
		}
	}
}

// Table4 reproduces the strongly-connected-components table (appendix G).
func Table4(w io.Writer, suites map[string]*Suite) {
	fmt.Fprintln(w, "Table 4: strongly connected components per graph method")
	fmt.Fprintf(w, "%-10s %-10s %6s\n", "dataset", "algorithm", "SCC")
	for _, spec := range StandardDatasets() {
		s, ok := suites[spec.Name]
		if !ok {
			continue
		}
		for _, g := range s.Graph {
			if g.Name == "NSG-Naive" {
				continue
			}
			fmt.Fprintf(w, "%-10s %-10s %6d\n", spec.Name, g.Name, g.SCC)
		}
	}
}

// Fig6 reproduces the headline search-performance figure: recall vs QPS
// curves for every graph method (plus NSG-Naive and the serial-scan
// reference) on the four datasets.
func Fig6(w io.Writer, suites map[string]*Suite, k int) {
	fmt.Fprintln(w, "Figure 6: ANNS performance of graph-based algorithms (recall@10 vs QPS)")
	for _, spec := range StandardDatasets() {
		s, ok := suites[spec.Name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "-- %s --\n", spec.Name)
		fmt.Fprintf(w, "%-10s %8s %9s %9s %12s\n", "algorithm", "effort", "recall", "QPS", "dist/query")
		methods := make([]Method, 0, len(s.Graph)+1)
		for _, g := range s.Graph {
			methods = append(methods, g.Method)
		}
		methods = append(methods, s.ScanMethod())
		sweeps := make(map[string][]SweepPoint, len(methods))
		for _, m := range methods {
			points := RecallSweep(m, s.Data.Queries, s.Data.GT, k)
			sweeps[m.Name] = points
			for _, pt := range points {
				fmt.Fprintf(w, "%-10s %8d %9.4f %9.0f %12.0f\n", m.Name, pt.Effort, pt.Recall, pt.QPS, pt.DistComps)
			}
		}
		// Headline comparison in the paper's high-precision region.
		for _, target := range []float64{0.95, 0.99} {
			fmt.Fprintf(w, "QPS at recall>=%.2f:\n", target)
			for _, m := range methods {
				if qps, ok := QPSAtRecall(sweeps[m.Name], target); ok {
					fmt.Fprintf(w, "  %-10s %9.0f\n", m.Name, qps)
				} else {
					fmt.Fprintf(w, "  %-10s     (recall<%.2f at all efforts)\n", m.Name, target)
				}
			}
		}
	}
}

// Fig7 reproduces the DEEP100M experiment: NSG (1 core and 16 shards in
// parallel) vs IVFPQ (1 and 16 cores) vs parallel serial scan, on a
// DEEP-like subset.
func Fig7(w io.Writer, c ExpConfig) error {
	n := c.n(30000)
	ds, err := dataset.DEEPLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	ds.Name = "DEEP100M"
	fmt.Fprintf(w, "Figure 7: NSG vs Faiss(IVFPQ) on DEEP-like subset (n=%d)\n", n)

	// One NSG over the whole set.
	shardedOne, err := distsearch.BuildSharded(ds.Base, distsearch.Params{
		Shards: 1, KNNK: 20, Build: distsearch.DefaultParams(1).Build, UseNNDescent: true, Seed: c.Seed,
	})
	if err != nil {
		return err
	}
	defer shardedOne.Close()
	// Sixteen shard NSGs searched in parallel.
	sharded16, err := distsearch.BuildSharded(ds.Base, distsearch.Params{
		Shards: 16, KNNK: 20, Build: distsearch.DefaultParams(16).Build, UseNNDescent: true, Seed: c.Seed,
	})
	if err != nil {
		return err
	}
	defer sharded16.Close()
	pqp := ivfpq.DefaultParams()
	pqp.NList = 256
	pq, err := ivfpq.Build(ds.Base, pqp)
	if err != nil {
		return err
	}

	k := 10
	fmt.Fprintf(w, "%-14s %8s %9s %9s\n", "method", "effort", "recall", "QPS")
	report := func(name string, efforts []int, search func(q []float32, effort int) []vecmath.Neighbor) {
		for _, effort := range efforts {
			got := make([][]int32, ds.Queries.Rows)
			start := time.Now()
			for qi := 0; qi < ds.Queries.Rows; qi++ {
				res := search(ds.Queries.Row(qi), effort)
				ids := make([]int32, len(res))
				for i, nb := range res {
					ids[i] = nb.ID
				}
				got[qi] = ids
			}
			el := time.Since(start)
			fmt.Fprintf(w, "%-14s %8d %9.4f %9.0f\n", name, effort,
				dataset.MeanRecall(got, ds.GT, k), float64(ds.Queries.Rows)/el.Seconds())
		}
	}

	graphEfforts := []int{10, 20, 40, 80, 160}
	report("NSG-1core", graphEfforts, func(q []float32, e int) []vecmath.Neighbor {
		return shardedOne.SearchSequential(q, k, e)
	})
	report("NSG-16core", graphEfforts, func(q []float32, e int) []vecmath.Neighbor {
		return sharded16.Search(q, k, e)
	})
	pqEfforts := []int{1, 2, 4, 8, 16, 32, 64}
	report("Faiss-1core", pqEfforts, func(q []float32, e int) []vecmath.Neighbor {
		return pq.Search(q, k, e, 4*k, nil)
	})
	report("Faiss-16core", pqEfforts, func(q []float32, e int) []vecmath.Neighbor {
		return searchIVFPQParallel(pq, q, k, e)
	})
	report("Serial-16core", []int{1}, func(q []float32, _ int) []vecmath.Neighbor {
		return scan.SearchParallel(ds.Base, q, k, 16)
	})
	return nil
}

// searchIVFPQParallel fans one query's probed cells across goroutines — the
// inner-query parallelism Faiss provides on multi-core CPUs.
func searchIVFPQParallel(pq *ivfpq.Index, q []float32, k, nprobe int) []vecmath.Neighbor {
	workers := runtime.GOMAXPROCS(0)
	if workers > nprobe {
		workers = nprobe
	}
	if workers <= 1 {
		return pq.Search(q, k, nprobe, 4*k, nil)
	}
	// Partition the probe budget: each worker probes a contiguous chunk of
	// the cell ranking by searching with increasing nprobe and removing
	// overlap at merge time via id dedupe.
	per := (nprobe + workers - 1) / workers
	lists := make([][]vecmath.Neighbor, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			hi := (wkr + 1) * per
			if hi > nprobe {
				hi = nprobe
			}
			lists[wkr] = pq.Search(q, k, hi, 4*k, nil)
		}(wkr)
	}
	wg.Wait()
	return vecmath.MergeNeighborLists(k, lists...)
}

// Fig8 reproduces the distance-computation comparison: NSG vs LSH vs
// randomized KD-trees vs IVFPQ, measured as distance evaluations per query
// needed to reach each precision level, on the SIFT-like and GIST-like
// datasets.
func Fig8(w io.Writer, suites map[string]*Suite, k int) {
	fmt.Fprintln(w, "Figure 8: distance calculations vs precision (graph vs non-graph)")
	for _, name := range []string{"SIFT1M", "GIST1M"} {
		s, ok := suites[name]
		if !ok || s.LSH == nil {
			fmt.Fprintf(w, "-- %s: suite missing non-graph indexes --\n", name)
			continue
		}
		fmt.Fprintf(w, "-- %s --\n", name)
		methods := []Method{
			s.NSGMethod(),
			s.LSHMethod([]int{1, 2, 4, 8, 16, 32, 64}),
			s.KDTreeMethod([]int{100, 200, 400, 800, 1600, 3200}),
			s.IVFPQMethod([]int{1, 2, 4, 8, 16, 32, 64}),
		}
		fmt.Fprintf(w, "%-10s %8s %9s %12s\n", "algorithm", "effort", "recall", "dist/query")
		sweeps := make(map[string][]SweepPoint)
		for _, m := range methods {
			pts := RecallSweep(m, s.Data.Queries, s.Data.GT, k)
			sweeps[m.Name] = pts
			for _, pt := range pts {
				fmt.Fprintf(w, "%-10s %8d %9.4f %12.0f\n", m.Name, pt.Effort, pt.Recall, pt.DistComps)
			}
		}
		for _, target := range []float64{0.80, 0.90, 0.95} {
			fmt.Fprintf(w, "distance computations at recall>=%.2f:\n", target)
			for _, m := range methods {
				if dc, ok := DistCompsAtRecall(sweeps[m.Name], target); ok {
					fmt.Fprintf(w, "  %-10s %12.0f\n", m.Name, dc)
				} else {
					fmt.Fprintf(w, "  %-10s      (not reached)\n", m.Name)
				}
			}
		}
	}
}

// scalingSubsets are the base-set sizes for the complexity experiments.
func scalingSubsets(c ExpConfig) []int {
	sizes := []int{1500, 3000, 6000, 12000}
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, c.n(s))
	}
	return out
}

// buildNSGOn builds an NSG over a fresh SIFT-like dataset of size n,
// returning the index, the dataset and the Algorithm-2 time.
func buildNSGOn(n int, c ExpConfig) (*distsearch.Sharded, dataset.Dataset, time.Duration, error) {
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return nil, ds, 0, err
	}
	start := time.Now()
	sh, err := distsearch.BuildSharded(ds.Base, distsearch.Params{
		Shards: 1, KNNK: 20, Build: distsearch.DefaultParams(1).Build, UseNNDescent: n > 6000, Seed: c.Seed,
	})
	return sh, ds, time.Since(start), err
}

// searchTimeAtPrecision finds the smallest effort reaching the target
// recall and returns the per-query time there (ms), or ok=false.
func searchTimeAtPrecision(search func(q []float32, k, effort int) []vecmath.Neighbor,
	ds dataset.Dataset, k int, target float64) (float64, bool) {
	for _, effort := range []int{k, 2 * k, 10, 20, 40, 80, 160, 320, 640} {
		if effort < k {
			continue
		}
		got := make([][]int32, ds.Queries.Rows)
		start := time.Now()
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res := search(ds.Queries.Row(qi), k, effort)
			ids := make([]int32, len(res))
			for i, nb := range res {
				ids[i] = nb.ID
			}
			got[qi] = ids
		}
		el := time.Since(start)
		if dataset.MeanRecall(got, ds.GT, k) >= target {
			return el.Seconds() * 1000 / float64(ds.Queries.Rows), true
		}
	}
	return 0, false
}

// figScaling is the shared engine of Figures 9 and 10: search time vs N at
// fixed precision, with a fitted power-law exponent.
func figScaling(w io.Writer, c ExpConfig, k int, target float64, title string) error {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%10s %14s\n", "N", "ms/query")
	var xs, ys []float64
	for _, n := range scalingSubsets(c) {
		sh, ds, _, err := buildNSGOn(n, c)
		if err != nil {
			return err
		}
		ms, ok := searchTimeAtPrecision(func(q []float32, kk, effort int) []vecmath.Neighbor {
			return sh.SearchSequential(q, kk, effort)
		}, ds, k, target)
		sh.Close()
		if !ok {
			fmt.Fprintf(w, "%10d       (target precision unreachable)\n", n)
			continue
		}
		fmt.Fprintf(w, "%10d %14.4f\n", n, ms)
		xs = append(xs, float64(n))
		ys = append(ys, ms)
	}
	if len(xs) >= 2 {
		exp, r2 := FitPowerLaw(xs, ys)
		fmt.Fprintf(w, "fitted: time ~ N^%.3f (R²=%.3f); paper reports near-logarithmic (exponent ≈ 1/d ≈ 0.1)\n", exp, r2)
	}
	return nil
}

// Fig9 reproduces the 1-NN search-time scaling experiment.
func Fig9(w io.Writer, c ExpConfig) error {
	return figScaling(w, c, 1, 0.95, "Figure 9: 1-NN search time vs N at 95% precision (SIFT-like)")
}

// Fig10 reproduces the 100-NN search-time scaling experiment. At laptop
// scale the ground truth is capped at GTK, so K = min(100, GTK).
func Fig10(w io.Writer, c ExpConfig) error {
	k := 100
	if k > c.GTK {
		k = c.GTK
	}
	return figScaling(w, c, k, 0.90,
		fmt.Sprintf("Figure 10: %d-NN search time vs N at 90%% precision (SIFT-like)", k))
}

// Fig11 reproduces the K-scaling experiment: search time vs the number of
// requested neighbors at fixed N and precision.
func Fig11(w io.Writer, c ExpConfig) error {
	n := c.n(8000)
	sh, ds, _, err := buildNSGOn(n, c)
	if err != nil {
		return err
	}
	defer sh.Close()
	fmt.Fprintf(w, "Figure 11: K-NN search time vs K at 99%% precision (SIFT-like, n=%d)\n", n)
	fmt.Fprintf(w, "%6s %14s\n", "K", "ms/query")
	var xs, ys []float64
	ks := []int{1, 2, 5, 10, 20, 50, 100}
	for _, k := range ks {
		if k > c.GTK {
			break
		}
		ms, ok := searchTimeAtPrecision(func(q []float32, kk, effort int) []vecmath.Neighbor {
			return sh.SearchSequential(q, kk, effort)
		}, ds, k, 0.99)
		if !ok {
			fmt.Fprintf(w, "%6d       (target precision unreachable)\n", k)
			continue
		}
		fmt.Fprintf(w, "%6d %14.4f\n", k, ms)
		xs = append(xs, float64(k))
		ys = append(ys, ms)
	}
	if len(xs) >= 2 {
		exp, r2 := FitPowerLaw(xs, ys)
		fmt.Fprintf(w, "fitted: time ~ K^%.3f (R²=%.3f); paper reports ≈ K^0.46\n", exp, r2)
	}
	return nil
}

// Fig12 reproduces the indexing-time scaling experiment: Algorithm-2 time
// (search-collect-select + tree spanning, excluding the kNN graph) vs N.
func Fig12(w io.Writer, c ExpConfig) error {
	fmt.Fprintln(w, "Figure 12: NSG Algorithm-2 indexing time vs N (SIFT-like)")
	fmt.Fprintf(w, "%10s %14s\n", "N", "seconds")
	var xs, ys []float64
	for _, n := range scalingSubsets(c) {
		sh, _, t2, err := buildNSGOn(n, c)
		if err != nil {
			return err
		}
		sh.Close()
		fmt.Fprintf(w, "%10d %14.3f\n", n, t2.Seconds())
		xs = append(xs, float64(n))
		ys = append(ys, t2.Seconds())
	}
	if len(xs) >= 2 {
		exp, r2 := FitPowerLaw(xs, ys)
		fmt.Fprintf(w, "fitted: time ~ N^%.3f (R²=%.3f); paper reports ≈ N^1.3\n", exp, r2)
	}
	return nil
}

// Table5 reproduces the Taobao e-commerce experiment: single-query response
// time to reach 98% precision (SQR98) for sharded NSG vs the IVFPQ
// baseline, at three scaled dataset sizes.
func Table5(w io.Writer, c ExpConfig) error {
	fmt.Fprintln(w, "Table 5: e-commerce scenario — single-query response time at 98% precision")
	fmt.Fprintf(w, "%-8s %-10s %4s %12s\n", "dataset", "algorithm", "NT", "SQR98 (ms)")

	rows := []struct {
		name   string
		n      int
		shards int
		withPQ bool
	}{
		{"E10M", c.n(10000), 1, true},
		{"E45M", c.n(20000), 12, true},
		{"E2B", c.n(40000), 32, false},
	}
	k := 10
	for _, row := range rows {
		ds, err := dataset.ECommerceLike(dataset.Config{N: row.n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
		if err != nil {
			return err
		}
		sh, err := distsearch.BuildSharded(ds.Base, distsearch.Params{
			Shards: row.shards, KNNK: 20, Build: distsearch.DefaultParams(row.shards).Build,
			UseNNDescent: row.n > 6000, Seed: c.Seed,
		})
		if err != nil {
			return err
		}
		search := sh.SearchSequential
		if row.shards > 1 {
			search = sh.Search
		}
		if ms, ok := searchTimeAtPrecision(func(q []float32, kk, effort int) []vecmath.Neighbor {
			return search(q, kk, effort)
		}, ds, k, 0.98); ok {
			fmt.Fprintf(w, "%-8s %-10s %4d %12.3f\n", row.name, "NSG", row.shards, ms)
		} else {
			fmt.Fprintf(w, "%-8s %-10s %4d     (98%% unreachable)\n", row.name, "NSG", row.shards)
		}
		sh.Close()
		if row.withPQ {
			pqp := ivfpq.DefaultParams()
			pqp.NList = 128
			pq, err := ivfpq.Build(ds.Base, pqp)
			if err != nil {
				return err
			}
			if ms, ok := searchTimeAtPrecisionPQ(pq, ds, k, 0.98); ok {
				fmt.Fprintf(w, "%-8s %-10s %4d %12.3f\n", row.name, "IVFPQ", row.shards, ms)
			} else {
				fmt.Fprintf(w, "%-8s %-10s %4d     (98%% unreachable)\n", row.name, "IVFPQ", row.shards)
			}
		}
	}
	return nil
}

func searchTimeAtPrecisionPQ(pq *ivfpq.Index, ds dataset.Dataset, k int, target float64) (float64, bool) {
	for _, nprobe := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		got := make([][]int32, ds.Queries.Rows)
		start := time.Now()
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res := pq.Search(ds.Queries.Row(qi), k, nprobe, 8*k, nil)
			ids := make([]int32, len(res))
			for i, nb := range res {
				ids[i] = nb.ID
			}
			got[qi] = ids
		}
		el := time.Since(start)
		if dataset.MeanRecall(got, ds.GT, k) >= target {
			return el.Seconds() * 1000 / float64(ds.Queries.Rows), true
		}
	}
	return 0, false
}

// RunAll executes every experiment in order, matching the paper's layout.
func RunAll(w io.Writer, c ExpConfig) error {
	if err := Table1(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	suites, err := buildAllSuites(c, true)
	if err != nil {
		return err
	}
	Table2(w, suites)
	fmt.Fprintln(w)
	Table3(w, suites)
	fmt.Fprintln(w)
	Table4(w, suites)
	fmt.Fprintln(w)
	Fig6(w, suites, 10)
	fmt.Fprintln(w)
	Fig8(w, suites, 10)
	fmt.Fprintln(w)
	if err := Fig7(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig9(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig10(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig11(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := Fig12(w, c); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return Table5(w, c)
}

// Experiments maps experiment ids (as accepted by cmd/bench -exp) to
// runners. Table/figure functions that share suites build them on demand.
func Experiments() map[string]func(io.Writer, ExpConfig) error {
	withSuites := func(f func(io.Writer, map[string]*Suite), extra bool) func(io.Writer, ExpConfig) error {
		return func(w io.Writer, c ExpConfig) error {
			suites, err := buildAllSuites(c, extra)
			if err != nil {
				return err
			}
			f(w, suites)
			return nil
		}
	}
	return map[string]func(io.Writer, ExpConfig) error{
		"table1":   Table1,
		"table2":   withSuites(Table2, false),
		"table3":   withSuites(Table3, false),
		"table4":   withSuites(Table4, false),
		"table5":   Table5,
		"fig6":     withSuites(func(w io.Writer, s map[string]*Suite) { Fig6(w, s, 10) }, false),
		"fig7":     Fig7,
		"fig8":     withSuites(func(w io.Writer, s map[string]*Suite) { Fig8(w, s, 10) }, true),
		"fig9":     Fig9,
		"fig10":    Fig10,
		"fig11":    Fig11,
		"fig12":    Fig12,
		"deltar":   DeltaR,
		"hops":     HopScaling,
		"ablation": Ablation,
		"build":    BuildPerf,
		"sharded":  ShardedServing,
		"quant":    Quantized,
		"filter":   FilteredSearch,
		"mqbatch":  MQBatch,
		"cluster":  ClusterServing,
		"live":     LiveServing,
		"disk":     DiskServing,
		"all":      RunAll,
	}
}

// ExperimentIDs lists the valid -exp values in a stable order.
func ExperimentIDs() []string {
	ids := make([]string, 0)
	for id := range Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
