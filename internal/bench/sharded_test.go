package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestShardedServingWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.02 // clamps to the 256-point floor; keep the smoke test fast
	c.Queries = 20
	var buf bytes.Buffer
	if err := ShardedServing(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sharded serving", "shards", "recall", "ms/query", "wrote BENCH_sharded.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_sharded.json")
	if err != nil {
		t.Fatalf("BENCH_sharded.json not written: %v", err)
	}
	var res ShardedResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_sharded.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.K != 10 {
		t.Errorf("implausible record: n=%d k=%d", res.N, res.K)
	}
	wantPoints := len(shardedShardCounts) * len(shardedEfforts)
	if len(res.Points) != wantPoints {
		t.Errorf("got %d points, want %d", len(res.Points), wantPoints)
	}
	if len(res.Targets) != len(shardedShardCounts) {
		t.Errorf("got %d targets, want %d", len(res.Targets), len(shardedShardCounts))
	}
	for _, pt := range res.Points {
		if pt.Recall < 0 || pt.Recall > 1 || pt.QPS <= 0 || pt.MsPerQ <= 0 {
			t.Errorf("implausible point: %+v", pt)
		}
		if pt.Hops <= 0 || pt.DistComps <= 0 {
			t.Errorf("merged stats missing from point: %+v", pt)
		}
	}
	// At the largest effort every shard count should reach high recall on
	// the 256-point floor dataset.
	for _, pt := range res.Points {
		if pt.Effort == 160 && pt.Recall < 0.9 {
			t.Errorf("r=%d at L=160: recall %.3f < 0.9", pt.Shards, pt.Recall)
		}
	}
}

func TestShardedExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["sharded"]; !ok {
		t.Error("experiment \"sharded\" not registered")
	}
}
