package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graphutil"
	"repro/internal/knngraph"
)

// BuildPerfResult is the serialized record of one construction-pipeline
// measurement: wall clock and allocation counts for NN-Descent and
// Algorithm 2, the per-phase breakdown from core.BuildStats, and the kNN
// graph's recall against the exact graph. cmd/bench -exp build writes it to
// BENCH_build.json so the build-performance trajectory is tracked across
// PRs.
type BuildPerfResult struct {
	Dataset    string  `json:"dataset"`
	N          int     `json:"n"`
	Dim        int     `json:"dim"`
	KNNK       int     `json:"knn_k"`
	NSGL       int     `json:"nsg_l"`
	NSGM       int     `json:"nsg_m"`
	KNNRecall  float64 `json:"knn_recall"`  // knngraph.Accuracy vs BuildExact
	NSGDegrees float64 `json:"nsg_avg_deg"` // average out-degree of the built NSG

	KNNMillis   float64 `json:"knn_build_ms"`
	KNNAllocs   uint64  `json:"knn_allocs"`
	KNNBytes    uint64  `json:"knn_alloc_bytes"`
	NSGMillis   float64 `json:"nsg_build_ms"`
	NSGAllocs   uint64  `json:"nsg_allocs"`
	NSGBytes    uint64  `json:"nsg_alloc_bytes"`
	TotalMillis float64 `json:"total_build_ms"`

	PhaseNavigateMillis    float64 `json:"phase_navigate_ms"`
	PhaseCollectMillis     float64 `json:"phase_collect_ms"`
	PhaseInterInsertMillis float64 `json:"phase_interinsert_ms"`
	PhaseRepairMillis      float64 `json:"phase_repair_ms"`
	PhaseFlattenMillis     float64 `json:"phase_flatten_ms"`
	TreeRepairEdges        int     `json:"tree_repair_edges"`
	TreePasses             int     `json:"tree_passes"`
}

// measureAllocs runs f and returns its wall clock plus the heap allocation
// count and bytes the process performed meanwhile (run single experiments
// for clean numbers).
func measureAllocs(f func() error) (time.Duration, uint64, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
}

// BuildPerf measures the construction pipeline on a SIFT-like stand-in:
// NN-Descent (wall clock, allocations, recall vs the exact kNN graph) and
// Algorithm 2 with its per-phase timings. The result table goes to w and
// the JSON record to BENCH_build.json in the working directory.
func BuildPerf(w io.Writer, c ExpConfig) error {
	n := c.n(6000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: 1, GTK: 1, Dim: 128, Seed: c.Seed})
	if err != nil {
		return fmt.Errorf("bench: generate build dataset: %w", err)
	}
	p := DefaultSuiteParams()
	res := BuildPerfResult{
		Dataset: "SIFT-like",
		N:       ds.Base.Rows,
		Dim:     ds.Base.Dim,
		KNNK:    p.KNNK,
		NSGL:    p.NSGL,
		NSGM:    p.NSGM,
	}

	params := knngraph.DefaultParams(p.KNNK)
	params.Seed = c.Seed
	var knnGraph *graphutil.Graph
	elapsed, allocs, bytes, err := measureAllocs(func() error {
		g, err := knngraph.BuildNNDescent(ds.Base, params)
		knnGraph = g
		return err
	})
	if err != nil {
		return fmt.Errorf("bench: NN-Descent: %w", err)
	}
	res.KNNMillis = elapsed.Seconds() * 1000
	res.KNNAllocs = allocs
	res.KNNBytes = bytes

	exact, err := knngraph.BuildExact(ds.Base, p.KNNK)
	if err != nil {
		return fmt.Errorf("bench: exact kNN graph: %w", err)
	}
	res.KNNRecall = knngraph.Accuracy(knnGraph, exact)

	var stats core.BuildStats
	var nsgIdx *core.NSG
	elapsed, allocs, bytes, err = measureAllocs(func() error {
		idx, s, err := core.NSGBuild(knnGraph, ds.Base, core.BuildParams{L: p.NSGL, M: p.NSGM, Seed: c.Seed})
		nsgIdx, stats = idx, s
		return err
	})
	if err != nil {
		return fmt.Errorf("bench: NSGBuild: %w", err)
	}
	res.NSGMillis = elapsed.Seconds() * 1000
	res.NSGAllocs = allocs
	res.NSGBytes = bytes
	res.TotalMillis = res.KNNMillis + res.NSGMillis
	res.NSGDegrees = nsgIdx.Stats().AvgDegree
	res.PhaseNavigateMillis = stats.Phases.Navigate.Seconds() * 1000
	res.PhaseCollectMillis = stats.Phases.Collect.Seconds() * 1000
	res.PhaseInterInsertMillis = stats.Phases.InterInsert.Seconds() * 1000
	res.PhaseRepairMillis = stats.Phases.Repair.Seconds() * 1000
	res.PhaseFlattenMillis = stats.Phases.Flatten.Seconds() * 1000
	res.TreeRepairEdges = stats.TreeRepairEdges
	res.TreePasses = stats.TreePasses

	fmt.Fprintln(w, "Build performance (construction pipeline)")
	fmt.Fprintf(w, "dataset %s: n=%d dim=%d  (K=%d L=%d M=%d)\n", res.Dataset, res.N, res.Dim, res.KNNK, res.NSGL, res.NSGM)
	fmt.Fprintf(w, "%-24s %12s %12s %14s\n", "stage", "wall (ms)", "allocs", "bytes")
	fmt.Fprintf(w, "%-24s %12.1f %12d %14d\n", "NN-Descent", res.KNNMillis, res.KNNAllocs, res.KNNBytes)
	fmt.Fprintf(w, "%-24s %12.1f %12d %14d\n", "NSG (Algorithm 2)", res.NSGMillis, res.NSGAllocs, res.NSGBytes)
	fmt.Fprintf(w, "%-24s %12.1f\n", "  navigate", res.PhaseNavigateMillis)
	fmt.Fprintf(w, "%-24s %12.1f\n", "  collect+select", res.PhaseCollectMillis)
	fmt.Fprintf(w, "%-24s %12.1f\n", "  inter-insert", res.PhaseInterInsertMillis)
	fmt.Fprintf(w, "%-24s %12.1f\n", "  repair", res.PhaseRepairMillis)
	fmt.Fprintf(w, "%-24s %12.1f\n", "  flatten", res.PhaseFlattenMillis)
	fmt.Fprintf(w, "kNN-graph recall vs exact: %.4f (gate 0.90)\n", res.KNNRecall)
	fmt.Fprintf(w, "NSG average out-degree: %.1f; repair edges %d in %d passes\n",
		res.NSGDegrees, res.TreeRepairEdges, res.TreePasses)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_build.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_build.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_build.json")
	return nil
}
