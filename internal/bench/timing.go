package bench

import "time"

// bestOf runs f reps times and returns the fastest wall-clock elapsed time.
// The experiments keep the fastest of several timed passes so a single
// scheduler hiccup cannot misprice a sweep cell — and trip the CI
// benchmark-regression gate whose baselines these records become.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}
