package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestFilteredSearchWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.2 // 1200 points: big enough that 50% selectivity stays in the traversal regime
	c.Queries = 20
	var buf bytes.Buffer
	if err := FilteredSearch(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"filtered search vs brute-force-with-filter", "selectivity", "multi-tenant sweep", "wrote BENCH_filter.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("filter table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "GATE MISS") {
		t.Errorf("acceptance gate missed at smoke scale:\n%s", out)
	}
	blob, err := os.ReadFile("BENCH_filter.json")
	if err != nil {
		t.Fatalf("BENCH_filter.json not written: %v", err)
	}
	var res FilterResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_filter.json not valid JSON: %v", err)
	}
	// 3 variants x 3 selectivities x len(filterEfforts) + 3 tenant points.
	if want := 3*3*len(filterEfforts) + 3; len(res.Points) != want {
		t.Errorf("got %d points, want %d", len(res.Points), want)
	}
	selSeen := map[float64]bool{}
	for _, pt := range res.Points {
		if pt.Recall < 0 || pt.Recall > 1 || pt.QPS <= 0 || pt.MsPerQ <= 0 {
			t.Errorf("implausible point: %+v", pt)
		}
		if pt.Variant == "tenant" {
			if pt.Tenants <= 0 {
				t.Errorf("tenant point without tenant count: %+v", pt)
			}
			continue
		}
		selSeen[pt.Selectivity] = true
		// The acceptance criterion: within 0.01 of the exact filtered
		// answer at the top of the effort sweep.
		if pt.Effort == filterEfforts[len(filterEfforts)-1] && pt.Recall < 0.99 {
			t.Errorf("%s at selectivity %.2f, L=%d: recall %.4f < 0.99", pt.Variant, pt.Selectivity, pt.Effort, pt.Recall)
		}
	}
	for _, sel := range []float64{0.50, 0.10, 0.01} {
		if !selSeen[sel] {
			t.Errorf("selectivity %.2f missing from the sweep", sel)
		}
	}
}

func TestFilterExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["filter"]; !ok {
		t.Error("experiment \"filter\" not registered")
	}
}
