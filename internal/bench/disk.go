package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/dataset"
)

// This file measures the disk-resident serving path: how fast a process
// can restart and answer its first query from a persisted index, and what
// the mapped read path costs at steady state. The stream format must be
// fully decoded before the first search (O(index size)); the NSGM mapped
// layout only parses a fixed-size header and serves every slab in place,
// so its restart cost is O(file open). cmd/bench -exp disk prices the four
// open strategies against each other and against a bare os.Open floor,
// and records the table to BENCH_disk.json for the CI regression gate.

// DiskPoint is one open-strategy measurement.
type DiskPoint struct {
	Variant      string  `json:"variant"`        // heap-load | mmap | mmap-noverify | cache
	OpenMs       float64 `json:"open_ms"`        // restart-to-ready: open returns a servable index
	FirstQueryMs float64 `json:"first_query_ms"` // restart-to-first-query: open + one cold search
	QPS          float64 `json:"qps"`            // warm single-client queries/second
	Recall       float64 `json:"recall"`         // mean recall@k vs exact ground truth
	FileBytes    int64   `json:"file_bytes"`     // size of the file this variant opens
	ReadOnly     bool    `json:"read_only"`      // whether the opened index rejects mutation
}

// DiskResult is the serialized record of one -exp disk run.
type DiskResult struct {
	Dataset      string      `json:"dataset"`
	N            int         `json:"n"`
	Dim          int         `json:"dim"`
	Queries      int         `json:"queries"`
	K            int         `json:"k"`
	Effort       int         `json:"effort"`
	BareOpenMs   float64     `json:"bare_open_ms"`     // os.Open+Stat+4KB read+Close floor
	FloorMs      float64     `json:"floor_ms"`         // bare open + one warm query: the physical minimum for restart-to-first-query
	RestartRatio float64     `json:"restart_ratio"`    // first_query_ms(mmap-noverify) / floor_ms
	ParityDelta  float64     `json:"max_recall_delta"` // worst |recall - heap recall| across mapped variants
	Points       []DiskPoint `json:"points"`
}

// diskVariant names one way of opening the persisted index.
type diskVariant struct {
	name   string
	mapped bool
	opts   nsg.MapOptions
}

func diskVariants() []diskVariant {
	return []diskVariant{
		{name: "heap-load"},
		{name: "mmap", mapped: true},
		{name: "mmap-noverify", mapped: true, opts: nsg.MapOptions{NoVerify: true}},
		{name: "cache", mapped: true, opts: nsg.MapOptions{DisableMmap: true, CacheBlockBytes: 1 << 16, CacheBlocks: 256}},
	}
}

// diskOpenReps is how many open+first-query cycles each variant gets; the
// fastest is kept so scheduler noise cannot misprice a microsecond-scale
// open against the regression baseline.
const diskOpenReps = 5

// DiskServing builds one SIFT-like index, persists it in both the stream
// and the mapped format, and measures restart-to-first-query, warm QPS and
// recall for every open strategy.
func DiskServing(w io.Writer, c ExpConfig) error {
	n := c.n(6000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k, effort := 10, 60
	res := DiskResult{Dataset: "SIFT-like", N: ds.Base.Rows, Dim: ds.Base.Dim, Queries: ds.Queries.Rows, K: k, Effort: effort}

	opts := nsg.DefaultOptions()
	opts.Seed = c.Seed
	opts.Quantize = nsg.QuantSQ8 // exercise the full layout: codes + remap + bounds sections
	idx, err := nsg.BuildFromFlat(ds.Base.Clone().Data, ds.Base.Dim, opts)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "bench-disk-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	streamPath := filepath.Join(dir, "stream.nsg")
	mappedPath := filepath.Join(dir, "mapped.nsg")
	if err := idx.Save(streamPath); err != nil {
		return err
	}
	if err := idx.SaveMapped(mappedPath); err != nil {
		return err
	}
	idx.Close()

	// The floor: what opening a file costs at all, with a warm page cache —
	// the same cache state every post-restart open below enjoys.
	res.BareOpenMs = bareOpenMs(mappedPath)

	fmt.Fprintf(w, "Disk-resident serving on SIFT-like subset (n=%d, dim=%d, k=%d, L=%d)\n", ds.Base.Rows, ds.Base.Dim, k, effort)
	fmt.Fprintf(w, "bare file open (os.Open+Stat+4KB read): %.4f ms\n", res.BareOpenMs)
	fmt.Fprintf(w, "%-14s %12s %14s %9s %9s %12s %9s\n",
		"variant", "open ms", "1st query ms", "QPS", "recall", "file bytes", "readonly")

	var heapRecall, warmQueryMs float64
	for _, v := range diskVariants() {
		path := streamPath
		open := func() (*nsg.Index, error) { return nsg.Load(path) }
		if v.mapped {
			path = mappedPath
			open = func() (*nsg.Index, error) { return nsg.OpenMapped(path, v.opts) }
		}
		pt, err := measureDiskPoint(open, path, ds, v.name, k, effort)
		if err != nil {
			return fmt.Errorf("bench: disk variant %s: %w", v.name, err)
		}
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "%-14s %12.4f %14.4f %9.0f %9.4f %12d %9v\n",
			pt.Variant, pt.OpenMs, pt.FirstQueryMs, pt.QPS, pt.Recall, pt.FileBytes, pt.ReadOnly)
		switch v.name {
		case "heap-load":
			heapRecall = pt.Recall
		case "mmap":
			// A warm query on the already-open mapped index: the part of
			// restart-to-first-query no open strategy can avoid.
			warmQueryMs = 1000 / pt.QPS
		}
	}

	// Acceptance readouts. The restart floor is the bare open plus one
	// unavoidable query; an open strategy that decodes the index lands far
	// above it, one that only maps pages lands within a small factor.
	res.FloorMs = res.BareOpenMs + warmQueryMs
	for _, pt := range res.Points {
		if pt.Variant == "mmap-noverify" && res.FloorMs > 0 {
			res.RestartRatio = pt.FirstQueryMs / res.FloorMs
		}
		if pt.Variant != "heap-load" {
			if d := pt.Recall - heapRecall; d > res.ParityDelta {
				res.ParityDelta = d
			} else if -d > res.ParityDelta {
				res.ParityDelta = -d
			}
		}
	}
	fmt.Fprintf(w, "restart-to-first-query floor (bare open + one warm query): %.4f ms\n", res.FloorMs)
	fmt.Fprintf(w, "mmap-noverify restart-to-first-query: %.2fx floor (acceptance: <=5x, not O(decode))\n", res.RestartRatio)
	fmt.Fprintf(w, "mapped recall parity vs heap at equal L: max delta %.4f (acceptance: <=0.001)\n", res.ParityDelta)

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_disk.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_disk.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_disk.json")
	return nil
}

// bareOpenMs measures the cost of opening the file at all: open, stat, one
// 4KB read, close. Min of many repeats — at microsecond scale a single
// timer read is mostly noise.
func bareOpenMs(path string) float64 {
	var buf [4096]byte
	el := bestOf(32, func() {
		f, err := os.Open(path)
		if err != nil {
			return
		}
		f.Stat()
		f.Read(buf[:])
		f.Close()
	})
	return float64(el.Nanoseconds()) / 1e6
}

// measureDiskPoint times diskOpenReps open+first-query cycles (keeping the
// fastest of each), then measures warm throughput and recall on a final
// open.
func measureDiskPoint(open func() (*nsg.Index, error), path string, ds dataset.Dataset, name string, k, effort int) (DiskPoint, error) {
	pt := DiskPoint{Variant: name}
	if fi, err := os.Stat(path); err == nil {
		pt.FileBytes = fi.Size()
	}
	q0 := ds.Queries.Row(0)
	bestOpen, bestFirst := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for rep := 0; rep < diskOpenReps; rep++ {
		start := time.Now()
		idx, err := open()
		opened := time.Since(start)
		if err != nil {
			return pt, err
		}
		idx.SearchWithPool(q0, k, effort)
		first := time.Since(start)
		idx.Close()
		if opened < bestOpen {
			bestOpen = opened
		}
		if first < bestFirst {
			bestFirst = first
		}
	}
	pt.OpenMs = float64(bestOpen.Nanoseconds()) / 1e6
	pt.FirstQueryMs = float64(bestFirst.Nanoseconds()) / 1e6

	idx, err := open()
	if err != nil {
		return pt, err
	}
	defer idx.Close()
	pt.ReadOnly = idx.ReadOnly()
	for i := 0; i < 4 && i < ds.Queries.Rows; i++ {
		idx.SearchWithPool(ds.Queries.Row(i), k, effort)
	}
	got := make([][]int32, ds.Queries.Rows)
	start := time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		ids, _ := idx.SearchWithPool(ds.Queries.Row(qi), k, effort)
		got[qi] = ids
	}
	elapsed := time.Since(start)
	if el := bestOf(2, func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			idx.SearchWithPool(ds.Queries.Row(qi), k, effort)
		}
	}); el < elapsed {
		elapsed = el
	}
	pt.Recall = dataset.MeanRecall(got, ds.GT, k)
	pt.QPS = float64(ds.Queries.Rows) / elapsed.Seconds()
	return pt, nil
}
