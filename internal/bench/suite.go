package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dpg"
	"repro/internal/efanna"
	"repro/internal/fanng"
	"repro/internal/graphutil"
	"repro/internal/hnsw"
	"repro/internal/ivfpq"
	"repro/internal/kgraph"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/scan"
	"repro/internal/vecmath"
)

// GraphIndexInfo is one row of Tables 2-4: a built graph method with its
// statistics and a sweepable search adapter.
type GraphIndexInfo struct {
	Name       string
	BuildTime  time.Duration // excludes shared kNN-graph construction
	KNNTime    time.Duration // kNN-graph construction (NSG reports t1+t2)
	IndexBytes int64
	AOD        float64
	MOD        int
	NNPct      float64
	SCC        int // strongly connected components; fixed-entry methods report 1 iff all reachable
	FixedEntry bool
	Method     Method
}

// Suite bundles one dataset with every index the paper compares on it.
type Suite struct {
	Data    dataset.Dataset
	KNN     *graphutil.Graph // shared kNN graph (k = SuiteParams.KNNK)
	KNNTime time.Duration
	Graph   []GraphIndexInfo // graph-based methods in Table 2 order

	// Non-graph methods for Figure 8 and the scan reference.
	LSH    *lsh.Index
	IVFPQ  *ivfpq.Index
	Forest *efanna.KDForest
}

// SuiteParams sizes the suite.
type SuiteParams struct {
	KNNK      int   // k of the shared kNN graph (must cover FANNG's candidate k)
	NSGL      int   // Algorithm 2 pool size
	NSGM      int   // NSG degree cap
	HNSWM     int   // HNSW M
	DPGKeep   int   // DPG kept edges
	Efforts   []int // sweep efforts for all graph methods
	Seed      int64
	WithExtra bool // also build LSH/IVFPQ/forest (needed by fig7/fig8/table5)
}

// DefaultSuiteParams returns the parameter set used across the experiments.
func DefaultSuiteParams() SuiteParams {
	return SuiteParams{
		KNNK:    40,
		NSGL:    40,
		NSGM:    25,
		HNSWM:   12,
		DPGKeep: 20,
		Efforts: []int{10, 20, 40, 80, 160, 320},
		Seed:    1,
	}
}

// sliceKNN returns a view of the shared kNN graph truncated to k neighbors
// per node (adjacency lists are ascending by distance, so prefixes are exact
// smaller-k graphs).
func sliceKNN(g *graphutil.Graph, k int) *graphutil.Graph {
	out := graphutil.New(g.N())
	for i := range g.Adj {
		lim := k
		if lim > len(g.Adj[i]) {
			lim = len(g.Adj[i])
		}
		out.Adj[i] = g.Adj[i][:lim]
	}
	return out
}

// BuildSuite constructs every index on ds. Exact kNN construction is used up
// to ~6k points; NN-Descent beyond.
func BuildSuite(ds dataset.Dataset, p SuiteParams) (*Suite, error) {
	s := &Suite{Data: ds}
	n := ds.Base.Rows
	k := p.KNNK
	if k >= n {
		k = n - 1
	}

	start := time.Now()
	var err error
	if n <= 6000 {
		s.KNN, err = knngraph.BuildExact(ds.Base, k)
	} else {
		kp := knngraph.DefaultParams(k)
		kp.Seed = p.Seed
		s.KNN, err = knngraph.BuildNNDescent(ds.Base, kp)
	}
	if err != nil {
		return nil, fmt.Errorf("bench: kNN graph: %w", err)
	}
	s.KNNTime = time.Since(start)

	nn := graphutil.ExactNearest(ds.Base)

	// NSG.
	start = time.Now()
	nsgIdx, _, err := core.NSGBuild(s.KNN, ds.Base, core.BuildParams{L: p.NSGL, M: p.NSGM, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: NSG: %w", err)
	}
	nsgTime := time.Since(start)
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "NSG",
		BuildTime:  nsgTime,
		KNNTime:    s.KNNTime,
		IndexBytes: nsgIdx.Graph.IndexBytes(),
		AOD:        nsgIdx.Graph.Degrees().Avg,
		MOD:        nsgIdx.Graph.Degrees().Max,
		NNPct:      nsgIdx.Graph.NNPercent(nn),
		SCC:        sccFixedEntry(nsgIdx.Graph, nsgIdx.Navigating),
		FixedEntry: true,
		Method: Method{
			Name:    "NSG",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return nsgIdx.Search(q, kk, effort, c)
			},
		},
	})

	// NSG-Naive (the ablation baseline of Section 4.1.2).
	naive, err := core.NSGNaiveBuild(s.KNN, ds.Base, p.NSGM, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: NSG-Naive: %w", err)
	}
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "NSG-Naive",
		IndexBytes: naive.Graph.IndexBytes(),
		AOD:        naive.Graph.Degrees().Avg,
		MOD:        naive.Graph.Degrees().Max,
		NNPct:      naive.Graph.NNPercent(nn),
		SCC:        naive.Graph.SCCCount(),
		Method: Method{
			Name:    "NSG-Naive",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return naive.Search(q, kk, effort, c)
			},
		},
	})

	// HNSW.
	start = time.Now()
	hnswIdx, err := hnsw.Build(ds.Base, hnsw.Params{M: p.HNSWM, EfConstruction: 100, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: HNSW: %w", err)
	}
	hnswTime := time.Since(start)
	bottom := hnswIdx.BottomLayer()
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "HNSW",
		BuildTime:  hnswTime,
		IndexBytes: hnswIdx.IndexBytes(),
		AOD:        bottom.Degrees().Avg,
		MOD:        bottom.Degrees().Max,
		NNPct:      bottom.NNPercent(nn),
		SCC:        sccFixedEntry(bottom, hnswIdx.Entry()),
		FixedEntry: true,
		Method: Method{
			Name:    "HNSW",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return hnswIdx.Search(q, kk, effort, c)
			},
		},
	})

	// FANNG.
	start = time.Now()
	fanngIdx, err := fanng.Build(s.KNN, ds.Base, fanng.Params{CandidateK: k, MaxDegree: p.NSGM + 10, TraversePasses: 2, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: FANNG: %w", err)
	}
	fanngTime := time.Since(start)
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "FANNG",
		BuildTime:  fanngTime,
		IndexBytes: fanngIdx.Graph.IndexBytes(),
		AOD:        fanngIdx.Graph.Degrees().Avg,
		MOD:        fanngIdx.Graph.Degrees().Max,
		NNPct:      fanngIdx.Graph.NNPercent(nn),
		SCC:        fanngIdx.Graph.SCCCount(),
		Method: Method{
			Name:    "FANNG",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return fanngIdx.Search(q, kk, effort, c)
			},
		},
	})

	// Efanna (KD-forest + kNN graph).
	start = time.Now()
	forest, err := efanna.BuildForest(ds.Base, efanna.DefaultForestParams())
	if err != nil {
		return nil, fmt.Errorf("bench: forest: %w", err)
	}
	efannaIdx, err := efanna.New(forest, s.KNN, ds.Base, 64)
	if err != nil {
		return nil, fmt.Errorf("bench: Efanna: %w", err)
	}
	efannaTime := time.Since(start)
	s.Forest = forest
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "Efanna",
		BuildTime:  efannaTime,
		IndexBytes: efannaIdx.IndexBytes(),
		AOD:        s.KNN.Degrees().Avg,
		MOD:        s.KNN.Degrees().Max,
		NNPct:      s.KNN.NNPercent(nn),
		SCC:        s.KNN.SCCCount(),
		Method: Method{
			Name:    "Efanna",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return efannaIdx.Search(q, kk, effort, c)
			},
		},
	})

	// KGraph (raw kNN graph, random starts).
	kgraphIdx, err := kgraph.New(s.KNN, ds.Base, 3, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("bench: KGraph: %w", err)
	}
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "KGraph",
		KNNTime:    s.KNNTime,
		IndexBytes: s.KNN.IndexBytes(),
		AOD:        s.KNN.Degrees().Avg,
		MOD:        s.KNN.Degrees().Max,
		NNPct:      s.KNN.NNPercent(nn),
		SCC:        s.KNN.SCCCount(),
		Method: Method{
			Name:    "KGraph",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return kgraphIdx.Search(q, kk, effort, c)
			},
		},
	})

	// DPG.
	start = time.Now()
	dpgIdx, err := dpg.Build(sliceKNN(s.KNN, 2*p.DPGKeep), ds.Base, dpg.Params{Keep: p.DPGKeep, Seed: p.Seed})
	if err != nil {
		return nil, fmt.Errorf("bench: DPG: %w", err)
	}
	dpgTime := time.Since(start)
	s.Graph = append(s.Graph, GraphIndexInfo{
		Name:       "DPG",
		BuildTime:  dpgTime,
		IndexBytes: dpgIdx.IndexBytes(),
		AOD:        dpgIdx.Graph.Degrees().Avg,
		MOD:        dpgIdx.Graph.Degrees().Max,
		NNPct:      dpgIdx.Graph.NNPercent(nn),
		SCC:        dpgIdx.Graph.SCCCount(),
		Method: Method{
			Name:    "DPG",
			Efforts: p.Efforts,
			Search: func(q []float32, kk, effort int, c *vecmath.Counter) []vecmath.Neighbor {
				return dpgIdx.Search(q, kk, effort, c)
			},
		},
	})

	if p.WithExtra {
		s.LSH, err = lsh.Build(ds.Base, lsh.Params{Tables: 10, Bits: 12, Seed: p.Seed})
		if err != nil {
			return nil, fmt.Errorf("bench: LSH: %w", err)
		}
		pqp := ivfpq.DefaultParams()
		pqp.NList = core.NearPowerOfTwo(n / 50)
		if pqp.NList < 8 {
			pqp.NList = 8
		}
		for ds.Base.Dim%pqp.M != 0 {
			pqp.M /= 2
		}
		s.IVFPQ, err = ivfpq.Build(ds.Base, pqp)
		if err != nil {
			return nil, fmt.Errorf("bench: IVFPQ: %w", err)
		}
	}
	return s, nil
}

// sccFixedEntry mirrors Table 4's convention for fixed-entry methods: 1 if
// every node is reachable from the entry point, otherwise 1 + the number of
// unreachable nodes' components (reported simply as the count of unreached
// components via full SCC).
func sccFixedEntry(g *graphutil.Graph, entry int32) int {
	if g.ReachableFrom(entry) == g.N() {
		return 1
	}
	return g.SCCCount()
}

// NSGMethod extracts the NSG sweep adapter from the suite.
func (s *Suite) NSGMethod() Method { return s.Graph[0].Method }

// ScanMethod returns the serial-scan reference as a sweepable method
// (effort ignored; recall is always 1).
func (s *Suite) ScanMethod() Method {
	base := s.Data.Base
	return Method{
		Name:    "Serial-Scan",
		Efforts: []int{1},
		Search: func(q []float32, k, _ int, c *vecmath.Counter) []vecmath.Neighbor {
			return scan.Search(base, q, k, c)
		},
	}
}

// LSHMethod returns the multi-probe LSH adapter (effort = probes/table).
func (s *Suite) LSHMethod(efforts []int) Method {
	idx := s.LSH
	return Method{
		Name:    "LSH",
		Efforts: efforts,
		Search: func(q []float32, k, effort int, c *vecmath.Counter) []vecmath.Neighbor {
			return idx.Search(q, k, effort, c)
		},
	}
}

// IVFPQMethod returns the IVFPQ adapter (effort = nprobe; rerank 4k).
func (s *Suite) IVFPQMethod(efforts []int) Method {
	idx := s.IVFPQ
	return Method{
		Name:    "IVFPQ",
		Efforts: efforts,
		Search: func(q []float32, k, effort int, c *vecmath.Counter) []vecmath.Neighbor {
			return idx.Search(q, k, effort, 4*k, c)
		},
	}
}

// KDTreeMethod returns the randomized KD-tree forest adapter (effort =
// distance checks), the Flann stand-in of Figure 8.
func (s *Suite) KDTreeMethod(efforts []int) Method {
	idx := s.Forest
	return Method{
		Name:    "KD-tree",
		Efforts: efforts,
		Search: func(q []float32, k, effort int, c *vecmath.Counter) []vecmath.Neighbor {
			return idx.SearchForest(q, k, effort, c)
		},
	}
}
