package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knngraph"
	"repro/internal/vecmath"
)

// This file measures the fused multi-query traversal: cohorts of B queries
// advance through Algorithm 1 in lockstep over one shared graph, so a graph
// row gathered from memory in a step is scored against every query in the
// cohort that wants it instead of being re-fetched per query. Because each
// query keeps its own pool and termination, results are byte-identical to
// solo runs — the fusion only changes how many times the same bytes cross
// the memory bus. cmd/bench -exp mqbatch sweeps cohort size x variant x
// search effort at full-core concurrency (cohort=1 is the embarrassingly
// parallel baseline the fused path must beat) and records the sweep to
// BENCH_mqbatch.json.

// MQBatchPoint is one (variant, cohort, effort) measurement.
type MQBatchPoint struct {
	Variant     string  `json:"variant"` // float32 | sq8+rerank
	Cohort      int     `json:"cohort"`  // queries fused per traversal (1 = solo baseline)
	Effort      int     `json:"effort"`  // search pool L
	Recall      float64 `json:"recall"`  // mean recall@k vs exact ground truth
	QPS         float64 `json:"qps"`     // full-core concurrent queries/second
	Hops        float64 `json:"hops"`    // mean greedy expansions per query
	DistComps   float64 `json:"dist_comps"`
	BytesPerHop float64 `json:"bytes_per_hop"` // vector + adjacency bytes gathered per expansion
	// SharedHitRate is the fraction of pair distances served by a row
	// another cohort member already paid to gather: 1 - rows/pairs. Zero
	// for the solo baseline (every distance gathers its own row).
	SharedHitRate float64 `json:"shared_gather_hit_rate"`
	AllocsPerQ    float64 `json:"allocs_per_q"`
	// Identical reports that every query's ids and distances matched its
	// solo run byte for byte — the correctness half of the experiment.
	Identical bool `json:"identical"`
}

// MQBatchTarget is the matched-recall comparison the acceptance gate uses:
// QPS per cohort size at the smallest effort reaching the target recall
// (recall does not depend on cohort — results are identical — so every
// cohort is read at the same effort).
type MQBatchTarget struct {
	Variant string  `json:"variant"`
	Cohort  int     `json:"cohort"`
	Target  float64 `json:"target_recall"`
	Effort  int     `json:"effort"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup_vs_solo"` // QPS / cohort=1 QPS at the same effort
	Reached bool    `json:"reached"`
}

// MQBatchResult is the serialized record of one -exp mqbatch run.
type MQBatchResult struct {
	Dataset string          `json:"dataset"`
	N       int             `json:"n"`
	Dim     int             `json:"dim"`
	Queries int             `json:"queries"` // replicated serving-load query count
	K       int             `json:"k"`
	Workers int             `json:"workers"`
	Points  []MQBatchPoint  `json:"points"`
	Targets []MQBatchTarget `json:"targets"`
}

// mqbatchCohorts is the cohort-size sweep; 1 is the baseline.
var mqbatchCohorts = []int{1, 4, 8, 16}

// mqbatchEfforts is the L sweep per (variant, cohort).
var mqbatchEfforts = []int{10, 20, 30, 40, 60, 100, 160}

// mqbatchLoadQueries is the replicated query-stream length: large enough
// that every core stays busy through a timed pass and per-pass dispatch
// overhead is amortized.
const mqbatchLoadQueries = 1024

// MQBatch runs the fused multi-query traversal experiment on the 8k-point
// SIFT-like suite (scaled by the config).
func MQBatch(w io.Writer, c ExpConfig) error {
	n := c.n(8000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 10
	workers := runtime.GOMAXPROCS(0)
	res := MQBatchResult{Dataset: "SIFT-like", N: ds.Base.Rows, Dim: ds.Base.Dim,
		Queries: mqbatchLoadQueries, K: k, Workers: workers}

	// One float index and one quantized index (relayout + SQ8, the
	// production Options.Quantize shape), both deterministic.
	buildOne := func(quantize bool) (*core.NSG, error) {
		base := ds.Base.Clone()
		kp := knngraph.DefaultParams(20)
		kp.Seed = c.Seed
		knn, err := knngraph.BuildNNDescent(base, kp)
		if err != nil {
			return nil, err
		}
		idx, _, err := core.NSGBuild(knn, base, core.BuildParams{L: 50, M: 30, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		if quantize {
			idx.Relayout()
			if err := idx.EnableQuantization(nil); err != nil {
				return nil, err
			}
		}
		return idx, nil
	}
	floatIdx, err := buildOne(false)
	if err != nil {
		return err
	}
	quantIdx, err := buildOne(true)
	if err != nil {
		return err
	}

	// The serving load replicates the query set to mqbatchLoadQueries rows
	// (row i answers query i mod Q, so recall and identity references line
	// up for free).
	qs := make([][]float32, mqbatchLoadQueries)
	for i := range qs {
		qs[i] = ds.Queries.Row(i % ds.Queries.Rows)
	}

	fmt.Fprintf(w, "fused multi-query traversal on SIFT-like subset (n=%d, dim=%d, k=%d, %d workers, %d queries/pass)\n",
		ds.Base.Rows, ds.Base.Dim, k, workers, mqbatchLoadQueries)
	fmt.Fprintf(w, "%-12s %7s %7s %9s %9s %7s %11s %10s %8s %9s %6s\n",
		"variant", "cohort", "effort", "recall", "QPS", "hops", "dist/query", "bytes/hop", "shared", "allocs/q", "ident")

	for _, v := range []struct {
		name string
		idx  *core.NSG
	}{{"float32", floatIdx}, {"sq8+rerank", quantIdx}} {
		// Per-effort solo references for identity checks and recall, and the
		// per-effort baseline QPS for the speedup column.
		type effortRow struct {
			recall  float64
			baseQPS float64
		}
		rows := map[int]*effortRow{}
		for _, b := range mqbatchCohorts {
			for _, effort := range mqbatchEfforts {
				pt := measureMQBatchPoint(v.idx, ds, qs, v.name, b, k, effort, workers)
				res.Points = append(res.Points, pt)
				if b == 1 {
					rows[effort] = &effortRow{recall: pt.Recall, baseQPS: pt.QPS}
				}
				fmt.Fprintf(w, "%-12s %7d %7d %9.4f %9.0f %7.1f %11.0f %10.0f %7.1f%% %9.2f %6v\n",
					v.name, b, effort, pt.Recall, pt.QPS, pt.Hops, pt.DistComps, pt.BytesPerHop,
					pt.SharedHitRate*100, pt.AllocsPerQ, pt.Identical)
			}
		}
		// Matched-recall reading: the smallest effort whose recall reaches
		// 0.99 (identical for every cohort), QPS per cohort there.
		targetEffort, reached := 0, false
		for _, effort := range mqbatchEfforts {
			if rows[effort] != nil && rows[effort].recall >= 0.99 {
				targetEffort, reached = effort, true
				break
			}
		}
		for _, b := range mqbatchCohorts {
			tg := MQBatchTarget{Variant: v.name, Cohort: b, Target: 0.99, Reached: reached}
			if reached {
				tg.Effort = targetEffort
				for _, pt := range res.Points {
					if pt.Variant == v.name && pt.Cohort == b && pt.Effort == targetEffort {
						tg.QPS = pt.QPS
						if base := rows[targetEffort].baseQPS; base > 0 {
							tg.Speedup = pt.QPS / base
						}
					}
				}
			}
			res.Targets = append(res.Targets, tg)
		}
	}

	fmt.Fprintf(w, "QPS at recall>=0.99, %d workers (cohort=1 is the embarrassingly parallel baseline):\n", workers)
	for _, tg := range res.Targets {
		if !tg.Reached {
			fmt.Fprintf(w, "  %-12s cohort=%-3d (0.99 unreachable in the effort sweep)\n", tg.Variant, tg.Cohort)
			continue
		}
		fmt.Fprintf(w, "  %-12s cohort=%-3d %9.0f QPS (L=%d)  %.2fx solo\n", tg.Variant, tg.Cohort, tg.QPS, tg.Effort, tg.Speedup)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_mqbatch.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_mqbatch.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_mqbatch.json")
	return nil
}

// measureMQBatchPoint scores one (index, variant, cohort, effort) cell:
// a single-threaded collect pass produces the work stats and checks every
// query's results against its solo run byte for byte, then three full-core
// timed passes (keeping the fastest) price the throughput.
func measureMQBatchPoint(idx *core.NSG, ds dataset.Dataset, qs [][]float32, variant string, cohort, k, effort, workers int) MQBatchPoint {
	pt := MQBatchPoint{Variant: variant, Cohort: cohort, Effort: effort}
	nq := len(qs)
	dim := ds.Base.Dim

	// Solo references over the distinct queries: ids + dists from the
	// single-query path, which is also the recall source.
	refCtx := core.NewSearchContext()
	refIDs := make([][]int32, ds.Queries.Rows)
	refDists := make([][]float32, ds.Queries.Rows)
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		r := idx.SearchWithHopsCtx(refCtx, ds.Queries.Row(qi), k, effort, nil)
		refIDs[qi] = make([]int32, 0, k)
		refDists[qi] = make([]float32, 0, k)
		for _, nb := range r.Neighbors {
			refIDs[qi] = append(refIDs[qi], nb.ID)
			refDists[qi] = append(refDists[qi], nb.Dist)
		}
	}
	pt.Recall = dataset.MeanRecall(refIDs, ds.GT, k)

	// Collect pass: one worker walks the whole load with the cohort (or
	// solo) path, accumulating hops, distance counts, the row/pair tallies
	// behind the shared-gather rate, and the identity verdict.
	var counter vecmath.Counter
	identical := true
	var hops, rowLoads, pairDists float64
	// The cohort=1 stats also come from the cohort engine — a single-query
	// cohort is byte-identical to the solo search (gated by the parity
	// tests) and its row/pair tallies then use the same accounting as the
	// fused points, so SharedHitRate and BytesPerHop compare like for
	// like. The timed passes below still run the true legacy path when
	// cohort <= 1.
	step := max(cohort, 1)
	cc := core.NewCohortContext()
	for lo := 0; lo < nq; lo += step {
		hi := min(lo+step, nq)
		for qi, r := range idx.SearchCohortCtx(cc, qs[lo:hi], k, effort, nil, &counter) {
			hops += float64(r.Hops)
			identical = identical && sameNeighbors(r.Neighbors, refIDs[(lo+qi)%ds.Queries.Rows], refDists[(lo+qi)%ds.Queries.Rows])
		}
	}
	rowLoads = float64(cc.RowLoads)
	pairDists = float64(cc.PairDists)
	pt.Identical = identical
	q := float64(nq)
	total := float64(counter.Count())
	pt.Hops = hops / q
	pt.DistComps = total / q
	if pairDists > 0 {
		pt.SharedHitRate = 1 - rowLoads/pairDists
	}

	// Bytes gathered per expansion: each gathered vector row is paid once
	// (that is the quantity fusion amortizes), plus the expanded node's
	// fixed-stride adjacency row; on the quantized path the rerank's exact
	// float gathers (every counted distance beyond the code pairs) are
	// rows touched at 4 bytes/dim.
	adjBytes := float64(idx.FlatView().Stride) * 4
	var vecBytes float64
	if idx.IsQuantized() {
		exact := total - pairDists // rerank float gathers
		vecBytes = rowLoads*float64(dim) + exact*float64(dim)*4
	} else {
		vecBytes = rowLoads * float64(dim) * 4
	}
	if hops > 0 {
		pt.BytesPerHop = (vecBytes + hops*adjBytes) / hops
	}

	// Timed passes at full-core concurrency: per-worker warm contexts,
	// atomic chunk claiming (cohort-sized chunks, so cohort membership —
	// and therefore every result — is independent of scheduling),
	// preallocated result rows. Three passes, keeping the fastest.
	got := make([][]int32, nq)
	for qi := range got {
		got[qi] = make([]int32, 0, k)
	}
	ctxs := make([]*core.SearchContext, workers)
	ccs := make([]*core.CohortContext, workers)
	for w := range ctxs {
		ctxs[w] = core.NewSearchContext()
		ccs[w] = core.NewCohortContext()
	}
	chunk := cohort
	if chunk < 1 {
		chunk = 1
	}
	chunks := (nq + chunk - 1) / chunk
	runPass := func() time.Duration {
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= chunks {
						return
					}
					lo := ci * chunk
					hi := min(lo+chunk, nq)
					if cohort <= 1 {
						r := idx.SearchWithHopsCtx(ctxs[w], qs[lo], k, effort, nil)
						ids := got[lo][:0]
						for _, nb := range r.Neighbors {
							ids = append(ids, nb.ID)
						}
						got[lo] = ids
						continue
					}
					for qi, r := range idx.SearchCohortCtx(ccs[w], qs[lo:hi], k, effort, nil, nil) {
						ids := got[lo+qi][:0]
						for _, nb := range r.Neighbors {
							ids = append(ids, nb.ID)
						}
						got[lo+qi] = ids
					}
				}
			}(w)
		}
		wg.Wait()
		return time.Since(start)
	}
	runPass() // warm every worker's scratch to steady-state sizes
	allocStart := heapAllocs()
	elapsed := runPass()
	pt.AllocsPerQ = float64(heapAllocs()-allocStart) / q
	if el := bestOf(2, func() { runPass() }); el < elapsed {
		elapsed = el
	}
	pt.QPS = q / elapsed.Seconds()
	return pt
}

// sameNeighbors reports whether a result list matches the reference ids and
// distances exactly (bit-for-bit on the float32 distances).
func sameNeighbors(got []vecmath.Neighbor, ids []int32, dists []float32) bool {
	if len(got) != len(ids) {
		return false
	}
	for i, nb := range got {
		if nb.ID != ids[i] || !sameFloatBits(nb.Dist, dists[i]) {
			return false
		}
	}
	return true
}

// sameFloatBits compares two float32s by bit pattern, so NaNs and signed
// zeros cannot slip through an == comparison.
func sameFloatBits(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}
