package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graphutil"
	"repro/internal/knngraph"
	"repro/internal/vecmath"
)

// This file adds the two theory-validation experiments from the paper's
// complexity analysis (Section 3.2 / Appendix I):
//
//   - EstimateDeltaR measures Δr, the minimum pairwise difference of side
//     lengths over sampled triangles, whose decay rate enters Theorem 2's
//     path-length bound. The paper reports Δr "decreases very slowly" and
//     is "almost a constant" on SIFT1M.
//   - HopScaling measures the average greedy search path length (hops) as
//     n grows; Theorem 2 predicts close-to-logarithmic growth.

// EstimateDeltaR samples triangles from the dataset and returns the minimum
// |δ(a,b) − δ(a,c)| over all side pairs — the Δr of Theorem 2 restricted to
// a sample (the exact minimum over all O(n³) triangles is unobservable at
// scale, and the paper's own estimates are sampled).
func EstimateDeltaR(base vecmath.Matrix, samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	min := math.Inf(1)
	for s := 0; s < samples; s++ {
		a := rng.Intn(base.Rows)
		b := rng.Intn(base.Rows)
		c := rng.Intn(base.Rows)
		if a == b || b == c || a == c {
			continue
		}
		ab := math.Sqrt(float64(vecmath.L2(base.Row(a), base.Row(b))))
		ac := math.Sqrt(float64(vecmath.L2(base.Row(a), base.Row(c))))
		bc := math.Sqrt(float64(vecmath.L2(base.Row(b), base.Row(c))))
		for _, d := range []float64{math.Abs(ab - ac), math.Abs(ab - bc), math.Abs(ac - bc)} {
			if d > 0 && d < min {
				min = d
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// DeltaR prints Δr estimates across dataset sizes — the appendix-I style
// check that Δr decays slowly with n.
func DeltaR(w io.Writer, c ExpConfig) error {
	fmt.Fprintln(w, "Delta-r estimation (Theorem 2): sampled min side-length difference vs N")
	fmt.Fprintf(w, "%10s %14s %14s\n", "N", "SIFT-like", "GIST-like")
	for _, n := range scalingSubsets(c) {
		sift, err := dataset.SIFTLike(dataset.Config{N: n, Queries: 1, GTK: 1, Seed: c.Seed})
		if err != nil {
			return err
		}
		gn := n / 4
		if gn < 256 {
			gn = 256
		}
		gist, err := dataset.GISTLike(dataset.Config{N: gn, Queries: 1, GTK: 1, Seed: c.Seed})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d %14.5f %14.5f\n", n,
			EstimateDeltaR(sift.Base, 20000, c.Seed),
			EstimateDeltaR(gist.Base, 20000, c.Seed))
	}
	fmt.Fprintln(w, "(paper: Δr nearly constant on SIFT1M, ~O(n^-1/18.9) on GIST1M)")
	return nil
}

// HopScaling prints the average greedy path length (Algorithm 1 pool
// expansions) against n at fixed precision — Theorem 2's near-logarithmic
// path-length prediction, observable directly because SearchWithHops
// reports the expansion count.
func HopScaling(w io.Writer, c ExpConfig) error {
	fmt.Fprintln(w, "Greedy path length vs N (Theorem 2): hops at fixed pool size")
	fmt.Fprintf(w, "%10s %12s %14s\n", "N", "avg hops", "hops/log2(N)")
	var xs, ys []float64
	for _, n := range scalingSubsets(c) {
		ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
		if err != nil {
			return err
		}
		idx, err := buildPlainNSG(ds.Base, n > 6000, c.Seed)
		if err != nil {
			return err
		}
		totalHops := 0
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			res := idx.SearchWithHops(ds.Queries.Row(qi), 10, 40, nil)
			totalHops += res.Hops
		}
		avg := float64(totalHops) / float64(ds.Queries.Rows)
		fmt.Fprintf(w, "%10d %12.1f %14.2f\n", n, avg, avg/math.Log2(float64(n)))
		xs = append(xs, float64(n))
		ys = append(ys, avg)
	}
	if len(xs) >= 2 {
		exp, r2 := FitPowerLaw(xs, ys)
		fmt.Fprintf(w, "fitted: hops ~ N^%.3f (R²=%.3f); Theorem 2 predicts ≈ N^{1/d}·log N — near-flat\n", exp, r2)
	}
	return nil
}

// buildPlainNSG builds one NSG over base with the default parameters,
// using NN-Descent above the exact-builder cutoff.
func buildPlainNSG(base vecmath.Matrix, approx bool, seed int64) (*core.NSG, error) {
	k := 40
	if k >= base.Rows {
		k = base.Rows - 1
	}
	var (
		knn *graphutil.Graph
		err error
	)
	if approx {
		p := knngraph.DefaultParams(k)
		p.Seed = seed
		knn, err = knngraph.BuildNNDescent(base, p)
	} else {
		knn, err = knngraph.BuildExact(base, k)
	}
	if err != nil {
		return nil, err
	}
	idx, _, err := core.NSGBuild(knn, base, core.BuildParams{L: 60, M: 30, Seed: seed})
	return idx, err
}
