package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/graphutil"
	"repro/internal/vecmath"
)

func TestFitPowerLaw(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	exp, r2 := FitPowerLaw(xs, ys)
	if math.Abs(exp-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", exp)
	}
	if r2 < 0.999 {
		t.Errorf("R² = %v, want ~1", r2)
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if exp, _ := FitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(exp) {
		t.Errorf("single point should yield NaN, got %v", exp)
	}
	if exp, _ := FitPowerLaw([]float64{1, 2}, []float64{1}); !math.IsNaN(exp) {
		t.Errorf("length mismatch should yield NaN, got %v", exp)
	}
	// Non-positive values are skipped.
	exp, _ := FitPowerLaw([]float64{0, 1, 2, 4}, []float64{5, 1, 2, 4})
	if math.Abs(exp-1) > 1e-9 {
		t.Errorf("exponent with skipped zero = %v, want 1", exp)
	}
}

func TestQPSAtRecall(t *testing.T) {
	points := []SweepPoint{
		{Effort: 10, Recall: 0.5, QPS: 1000},
		{Effort: 20, Recall: 0.9, QPS: 500},
		{Effort: 40, Recall: 1.0, QPS: 200},
	}
	if qps, ok := QPSAtRecall(points, 0.9); !ok || qps != 500 {
		t.Errorf("QPS@0.9 = %v,%v want 500,true", qps, ok)
	}
	// Interpolated halfway between 0.9 and 1.0.
	if qps, ok := QPSAtRecall(points, 0.95); !ok || math.Abs(qps-350) > 1e-9 {
		t.Errorf("QPS@0.95 = %v,%v want 350,true", qps, ok)
	}
	if _, ok := QPSAtRecall(points[:1], 0.9); ok {
		t.Error("unreachable target must report ok=false")
	}
}

func TestDistCompsAtRecall(t *testing.T) {
	points := []SweepPoint{
		{Effort: 1, Recall: 0.4, DistComps: 100},
		{Effort: 2, Recall: 0.8, DistComps: 200},
	}
	if dc, ok := DistCompsAtRecall(points, 0.6); !ok || math.Abs(dc-150) > 1e-9 {
		t.Errorf("DC@0.6 = %v,%v want 150,true", dc, ok)
	}
}

func TestRecallSweepOnScan(t *testing.T) {
	ds, err := dataset.Uniform(dataset.Config{N: 400, Queries: 20, GTK: 10, Dim: 8, Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	s := &Suite{Data: ds}
	points := RecallSweep(s.ScanMethod(), ds.Queries, ds.GT, 10)
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	if points[0].Recall != 1.0 {
		t.Errorf("serial scan recall = %v, want 1", points[0].Recall)
	}
	if points[0].DistComps != float64(ds.Base.Rows) {
		t.Errorf("scan dist comps = %v, want %d", points[0].DistComps, ds.Base.Rows)
	}
}

func TestFormatBytes(t *testing.T) {
	if got := FormatBytes(2 << 20); got != "2.0 MB" {
		t.Errorf("FormatBytes = %q", got)
	}
	if got := FormatBytes(1500 << 20); !strings.Contains(got, "e3") {
		t.Errorf("large FormatBytes = %q, want e3 form", got)
	}
}

// smallExpConfig shrinks everything for harness tests.
func smallExpConfig() ExpConfig {
	return ExpConfig{Scale: 0.08, Queries: 20, GTK: 20, Seed: 1}
}

func TestBuildSuiteShapes(t *testing.T) {
	ds, err := dataset.SIFTLike(dataset.Config{N: 1200, Queries: 30, GTK: 10, Dim: 32, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultSuiteParams()
	p.Efforts = []int{10, 40, 160}
	p.WithExtra = true
	s, err := BuildSuite(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]GraphIndexInfo)
	for _, g := range s.Graph {
		names[g.Name] = g
	}
	for _, want := range []string{"NSG", "NSG-Naive", "HNSW", "FANNG", "Efanna", "KGraph", "DPG"} {
		if _, ok := names[want]; !ok {
			t.Errorf("suite missing %s", want)
		}
	}

	// Paper shape checks on Table 2/4 quantities:
	nsg := names["NSG"]
	if nsg.SCC != 1 {
		t.Errorf("NSG SCC = %d, want 1 (connectivity guarantee)", nsg.SCC)
	}
	if names["HNSW"].SCC != 1 {
		t.Errorf("HNSW SCC = %d, want 1", names["HNSW"].SCC)
	}
	if nsg.NNPct < 95 {
		t.Errorf("NSG NN%% = %.1f, want >= 95", nsg.NNPct)
	}
	// NSG's fixed-stride index must be smaller than HNSW (multi-layer),
	// KGraph (dense kNN rows) and Efanna (kNN graph + tree forest) — the
	// Table 2 headline. FANNG is excluded: its occlusion pruning yields a
	// comparable max degree at laptop scale, while at the paper's scale its
	// refinement passes inflate MOD (98 vs NSG's 50 on SIFT1M).
	for _, other := range []string{"HNSW", "KGraph", "Efanna"} {
		if nsg.IndexBytes > names[other].IndexBytes {
			t.Errorf("NSG index (%d B) larger than %s (%d B)", nsg.IndexBytes, other, names[other].IndexBytes)
		}
	}
	// The MRNG-pruned NSG must be sparser than the raw kNN graph.
	if nsg.AOD >= names["KGraph"].AOD {
		t.Errorf("NSG AOD %.1f not below KGraph %.1f", nsg.AOD, names["KGraph"].AOD)
	}
	// DPG's reverse compensation inflates its max degree beyond NSG's.
	if names["DPG"].MOD <= nsg.MOD {
		t.Errorf("DPG MOD %d not above NSG MOD %d", names["DPG"].MOD, nsg.MOD)
	}

	// NSG must reach high recall on its sweep and beat NSG-Naive at equal
	// effort (the paper's Figure 6 ablation).
	nsgPts := RecallSweep(nsg.Method, ds.Queries, ds.GT, 10)
	naivePts := RecallSweep(names["NSG-Naive"].Method, ds.Queries, ds.GT, 10)
	if best := nsgPts[len(nsgPts)-1].Recall; best < 0.95 {
		t.Errorf("NSG best recall %.3f < 0.95", best)
	}
	if nsgPts[len(nsgPts)-1].Recall < naivePts[len(naivePts)-1].Recall-0.05 {
		t.Errorf("NSG (%.3f) should not trail NSG-Naive (%.3f)",
			nsgPts[len(nsgPts)-1].Recall, naivePts[len(naivePts)-1].Recall)
	}
}

func TestTable1Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, smallExpConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SIFT1M", "GIST1M", "RAND4M", "GAUSS5M", "LID"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "all"} {
		if _, ok := exps[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	ids := ExperimentIDs()
	if len(ids) != len(exps) {
		t.Errorf("ExperimentIDs has %d entries, registry %d", len(ids), len(exps))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("ExperimentIDs not sorted")
		}
	}
}

func TestMiniExperimentsRun(t *testing.T) {
	// Smoke-run the cheap experiments end to end at tiny scale; the
	// expensive ones are exercised by cmd/bench and bench_test.go at the
	// repo root.
	if testing.Short() {
		t.Skip("short mode")
	}
	c := smallExpConfig()
	var buf bytes.Buffer
	if err := Table5(&buf, c); err != nil {
		t.Fatalf("table5: %v", err)
	}
	if !strings.Contains(buf.String(), "E10M") {
		t.Errorf("table5 output missing rows:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig12(&buf, c); err != nil {
		t.Fatalf("fig12: %v", err)
	}
	if !strings.Contains(buf.String(), "fitted") {
		t.Errorf("fig12 output missing fit:\n%s", buf.String())
	}
}

func TestSliceKNN(t *testing.T) {
	g := graphutil.New(3)
	g.Adj[0] = []int32{1, 2}
	g.Adj[1] = []int32{0}
	got := sliceKNN(g, 1)
	if len(got.Adj[0]) != 1 || got.Adj[0][0] != 1 {
		t.Errorf("sliceKNN wrong: %v", got.Adj[0])
	}
	if len(got.Adj[2]) != 0 {
		t.Errorf("sliceKNN on empty row: %v", got.Adj[2])
	}
}

var _ = vecmath.Neighbor{} // referenced to keep the import for sweep assertions

func TestEstimateDeltaR(t *testing.T) {
	ds, err := dataset.Uniform(dataset.Config{N: 200, Queries: 1, GTK: 1, Dim: 8, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	dr := EstimateDeltaR(ds.Base, 5000, 1)
	if dr <= 0 {
		t.Errorf("Δr = %v, want positive on continuous data", dr)
	}
	// Degenerate: all-identical points → no valid triangle → 0.
	if got := EstimateDeltaR(vecmath.NewMatrix(50, 4), 1000, 1); got != 0 {
		t.Errorf("Δr on duplicates = %v, want 0", got)
	}
}

func TestTheoryAndAblationExperimentsRegistered(t *testing.T) {
	exps := Experiments()
	for _, id := range []string{"deltar", "hops", "ablation"} {
		if _, ok := exps[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestHopScalingRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	c := smallExpConfig()
	if err := HopScaling(&buf, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hops") {
		t.Errorf("missing output:\n%s", buf.String())
	}
}

func TestAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	c := smallExpConfig()
	if err := Ablation(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NSG (full Algorithm 2)", "random entry", "NSG-Naive", "truncation", "m=20"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
