package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestBuildPerfWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.05 // clamps to the 256-point floor; keep the smoke test fast
	var buf bytes.Buffer
	if err := BuildPerf(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NN-Descent", "Algorithm 2", "collect+select", "recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("build table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_build.json")
	if err != nil {
		t.Fatalf("BENCH_build.json not written: %v", err)
	}
	var res BuildPerfResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_build.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.KNNMillis <= 0 || res.NSGMillis <= 0 {
		t.Errorf("implausible record: %+v", res)
	}
	if res.KNNRecall < 0.90 {
		t.Errorf("kNN recall %.3f below the 0.90 gate", res.KNNRecall)
	}
}

func TestBuildExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["build"]; !ok {
		t.Error("experiment \"build\" not registered")
	}
}
