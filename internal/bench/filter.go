package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/knngraph"
	"repro/internal/meta"
	"repro/internal/vecmath/quant"
)

// This file measures predicate-aware filtered search: recall against
// brute-force-with-filter (the exact answer over the passing subset) and
// QPS at selectivities 50%, 10% and 1%, across the float32, SQ8 and int4
// serving paths, plus a multi-tenant sweep where disjoint id ranges emulate
// per-tenant indexes sharing one graph. The acceptance gate requires the
// filtered traversal to stay within 0.01 of the exact filtered answer at
// every selectivity. cmd/bench -exp filter prints the sweep and records it
// to BENCH_filter.json.

// FilterPoint is one (variant, selectivity, effort) measurement.
type FilterPoint struct {
	Variant     string  `json:"variant"`     // float32 | sq8 | int4 | tenant
	Selectivity float64 `json:"selectivity"` // fraction of the base set passing
	Tenants     int     `json:"tenants,omitempty"`
	Effort      int     `json:"effort"`       // search pool L
	Recall      float64 `json:"recall"`       // mean recall@k vs brute-force-with-filter
	QPS         float64 `json:"qps"`          // single-client queries/second
	MsPerQ      float64 `json:"ms_per_query"` // mean single-query response time
	Hops        float64 `json:"hops"`         // mean expansions (0 in the exact-fallback regime)
	AllocsPerQ  float64 `json:"allocs_per_q"` // heap allocations per steady-state query
}

// FilterResult is the serialized record of one -exp filter run.
type FilterResult struct {
	Dataset string        `json:"dataset"`
	N       int           `json:"n"`
	Dim     int           `json:"dim"`
	Queries int           `json:"queries"`
	K       int           `json:"k"`
	Points  []FilterPoint `json:"points"`
}

// filterEfforts is the L sweep per (variant, selectivity) cell.
var filterEfforts = []int{20, 40, 60, 100}

// filteredGT computes the exact filtered top-k per query: brute force over
// the rows whose pass bit is set — the reference every filtered traversal
// is scored against.
func filteredGT(ds dataset.Dataset, bits []uint64, k int) [][]int32 {
	type nb struct {
		id int32
		d  float32
	}
	out := make([][]int32, ds.Queries.Rows)
	for qi := range out {
		q := ds.Queries.Row(qi)
		var best []nb
		for i := 0; i < ds.Base.Rows; i++ {
			if bits[i>>6]&(1<<uint(i&63)) == 0 {
				continue
			}
			row := ds.Base.Row(i)
			var d float32
			for j := range row {
				diff := row[j] - q[j]
				d += diff * diff
			}
			best = append(best, nb{int32(i), d})
		}
		sort.Slice(best, func(a, b int) bool {
			return best[a].d < best[b].d || (best[a].d == best[b].d && best[a].id < best[b].id)
		})
		if len(best) > k {
			best = best[:k]
		}
		ids := make([]int32, len(best))
		for i := range best {
			ids[i] = best[i].id
		}
		out[qi] = ids
	}
	return out
}

// FilteredSearch runs the filtered-search experiment on the 6k-point
// SIFT-like suite (scaled by the config).
func FilteredSearch(w io.Writer, c ExpConfig) error {
	n := c.n(6000)
	ds, err := dataset.SIFTLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 10
	res := FilterResult{Dataset: "SIFT-like", N: ds.Base.Rows, Dim: ds.Base.Dim, Queries: ds.Queries.Rows, K: k}

	// The metadata: bucket = id % 100 drives the selectivity sweep
	// (Range(bucket, 0, s-1) passes s% of the rows, spread uniformly), and
	// id itself drives the tenant sweep (disjoint contiguous ranges).
	st := meta.New(ds.Base.Rows)
	buckets := make([]int64, ds.Base.Rows)
	ids := make([]int64, ds.Base.Rows)
	for i := range buckets {
		buckets[i] = int64(i % 100)
		ids[i] = int64(i)
	}
	if err := st.AddInt64("bucket", buckets); err != nil {
		return err
	}
	if err := st.AddInt64("id", ids); err != nil {
		return err
	}

	// One graph per serving representation, all from identical seeds.
	buildOne := func(mode quant.Mode) (*core.NSG, error) {
		base := ds.Base.Clone()
		kp := knngraph.DefaultParams(20)
		kp.Seed = c.Seed
		knn, err := knngraph.BuildNNDescent(base, kp)
		if err != nil {
			return nil, err
		}
		idx, _, err := core.NSGBuild(knn, base, core.BuildParams{L: 50, M: 30, Seed: c.Seed})
		if err != nil {
			return nil, err
		}
		switch mode {
		case quant.ModeSQ8:
			err = idx.EnableQuantization(nil)
		case quant.ModeInt4:
			err = idx.EnableQuantization4(nil)
		}
		if err != nil {
			return nil, err
		}
		idx.Meta = st
		return idx, nil
	}
	variants := []struct {
		name string
		mode quant.Mode
	}{
		{"float32", quant.ModeNone},
		{"sq8", quant.ModeSQ8},
		{"int4", quant.ModeInt4},
	}
	indexes := make(map[string]*core.NSG, len(variants))
	for _, v := range variants {
		idx, err := buildOne(v.mode)
		if err != nil {
			return err
		}
		indexes[v.name] = idx
	}

	fmt.Fprintf(w, "filtered search vs brute-force-with-filter on SIFT-like subset (n=%d, dim=%d, k=%d)\n", ds.Base.Rows, ds.Base.Dim, k)
	fmt.Fprintf(w, "%-10s %12s %8s %9s %9s %12s %8s %10s\n",
		"variant", "selectivity", "effort", "recall", "QPS", "ms/query", "hops", "allocs/q")

	// Selectivity sweep: 50%, 10%, 1% of the base set passing.
	gateOK := true
	for _, selPct := range []int{50, 10, 1} {
		bits := make([]uint64, meta.BitsLen(st.Rows()))
		count, err := st.Compile(meta.Range("bucket", 0, int64(selPct-1)), bits)
		if err != nil {
			return err
		}
		flt := &core.Filter{Bits: bits, Count: count}
		gt := filteredGT(ds, bits, k)
		sel := float64(selPct) / 100
		for _, v := range variants {
			idx := indexes[v.name]
			var bestRecall float64
			for _, effort := range filterEfforts {
				pt := measureFilterPoint(idx, ds, gt, flt, v.name, sel, k, effort)
				res.Points = append(res.Points, pt)
				if pt.Recall > bestRecall {
					bestRecall = pt.Recall
				}
				fmt.Fprintf(w, "%-10s %12.2f %8d %9.4f %9.0f %12.4f %8.1f %10.2f\n",
					v.name, sel, effort, pt.Recall, pt.QPS, pt.MsPerQ, pt.Hops, pt.AllocsPerQ)
			}
			if bestRecall < 0.99 {
				gateOK = false
				fmt.Fprintf(w, "  GATE MISS: %s at %.0f%% selectivity peaks at recall %.4f (< 0.99)\n", v.name, sel*100, bestRecall)
			}
		}
	}
	if gateOK {
		fmt.Fprintln(w, "gate: every variant within 0.01 of brute-force-with-filter at 50%/10%/1% selectivity")
	}

	// Multi-tenant sweep: T disjoint contiguous id ranges over one shared
	// graph; query qi searches tenant qi%T. Per-tenant selectivity is 1/T,
	// so rising T walks the traversal from the graph-guided regime into the
	// exact fallback.
	fmt.Fprintf(w, "multi-tenant sweep (disjoint id ranges, float32, L=%d):\n", 60)
	fmt.Fprintf(w, "%8s %12s %9s %9s %10s\n", "tenants", "selectivity", "recall", "QPS", "allocs/q")
	idx := indexes["float32"]
	for _, tenants := range []int{4, 16, 64} {
		per := ds.Base.Rows / tenants
		flts := make([]*core.Filter, tenants)
		gts := make([][][]int32, tenants)
		for tn := 0; tn < tenants; tn++ {
			bits := make([]uint64, meta.BitsLen(st.Rows()))
			lo, hi := int64(tn*per), int64((tn+1)*per-1)
			if tn == tenants-1 {
				hi = int64(ds.Base.Rows - 1) // absorb the remainder
			}
			count, err := st.Compile(meta.Range("id", lo, hi), bits)
			if err != nil {
				return err
			}
			flts[tn] = &core.Filter{Bits: bits, Count: count}
			gts[tn] = filteredGT(ds, bits, k)
		}
		pt := measureTenantPoint(idx, ds, gts, flts, k, 60)
		pt.Tenants = tenants
		pt.Selectivity = float64(per) / float64(ds.Base.Rows)
		res.Points = append(res.Points, pt)
		fmt.Fprintf(w, "%8d %12.4f %9.4f %9.0f %10.2f\n", tenants, pt.Selectivity, pt.Recall, pt.QPS, pt.AllocsPerQ)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_filter.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_filter.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_filter.json")
	return nil
}

// recallVsGT scores got against the exact filtered answer, treating a
// short exact list (fewer than k passing points) as full credit when every
// entry is matched.
func recallVsGT(got [][]int32, gt [][]int32) float64 {
	total := 0.0
	for qi := range got {
		want := gt[qi]
		if len(want) == 0 {
			total++
			continue
		}
		set := make(map[int32]bool, len(want))
		for _, id := range want {
			set[id] = true
		}
		hit := 0
		for _, id := range got[qi] {
			if set[id] {
				hit++
			}
		}
		total += float64(hit) / float64(len(want))
	}
	return total / float64(len(got))
}

// measureFilterPoint scores one (index, filter, effort) cell with a reused
// context: recall vs the filtered ground truth, latency/QPS and allocs.
func measureFilterPoint(idx *core.NSG, ds dataset.Dataset, gt [][]int32, flt *core.Filter, variant string, sel float64, k, effort int) FilterPoint {
	pt := FilterPoint{Variant: variant, Selectivity: sel, Effort: effort}
	ctx := core.NewSearchContext()
	for i := 0; i < 4 && i < ds.Queries.Rows; i++ { // warm the context
		idx.SearchFilteredWithHopsCtx(ctx, ds.Queries.Row(i), k, effort, nil, flt, nil)
	}
	got := make([][]int32, ds.Queries.Rows)
	for qi := range got {
		got[qi] = make([]int32, 0, k)
	}
	var hops float64
	allocStart := heapAllocs()
	start := time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		r := idx.SearchFilteredWithHopsCtx(ctx, ds.Queries.Row(qi), k, effort, nil, flt, nil)
		ids := got[qi][:0]
		for _, nb := range r.Neighbors {
			ids = append(ids, nb.ID)
		}
		got[qi] = ids
		hops += float64(r.Hops)
	}
	elapsed := time.Since(start)
	allocs := heapAllocs() - allocStart
	if el := bestOf(2, func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			idx.SearchFilteredWithHopsCtx(ctx, ds.Queries.Row(qi), k, effort, nil, flt, nil)
		}
	}); el < elapsed {
		elapsed = el
	}
	q := float64(ds.Queries.Rows)
	pt.Recall = recallVsGT(got, gt)
	pt.QPS = q / elapsed.Seconds()
	pt.MsPerQ = elapsed.Seconds() * 1000 / q
	pt.Hops = hops / q
	pt.AllocsPerQ = float64(allocs) / q
	return pt
}

// measureTenantPoint interleaves tenants across the query stream — query qi
// runs under tenant qi%T's filter — the access pattern of one shared index
// serving many isolated tenants.
func measureTenantPoint(idx *core.NSG, ds dataset.Dataset, gts [][][]int32, flts []*core.Filter, k, effort int) FilterPoint {
	pt := FilterPoint{Variant: "tenant", Effort: effort}
	tenants := len(flts)
	ctx := core.NewSearchContext()
	for i := 0; i < 4 && i < ds.Queries.Rows; i++ {
		idx.SearchFilteredWithHopsCtx(ctx, ds.Queries.Row(i), k, effort, nil, flts[i%tenants], nil)
	}
	got := make([][]int32, ds.Queries.Rows)
	for qi := range got {
		got[qi] = make([]int32, 0, k)
	}
	allocStart := heapAllocs()
	start := time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		r := idx.SearchFilteredWithHopsCtx(ctx, ds.Queries.Row(qi), k, effort, nil, flts[qi%tenants], nil)
		ids := got[qi][:0]
		for _, nb := range r.Neighbors {
			ids = append(ids, nb.ID)
		}
		got[qi] = ids
	}
	elapsed := time.Since(start)
	allocs := heapAllocs() - allocStart
	q := float64(ds.Queries.Rows)
	total := 0.0
	for qi := range got {
		total += recallVsGT(got[qi:qi+1], gts[qi%tenants][qi:qi+1])
	}
	pt.Recall = total / q
	pt.QPS = q / elapsed.Seconds()
	pt.MsPerQ = elapsed.Seconds() * 1000 / q
	pt.AllocsPerQ = float64(allocs) / q
	return pt
}
