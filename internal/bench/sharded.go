package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/dataset"
)

// heapAllocs reads the process-wide cumulative malloc count.
func heapAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// This file measures the public sharded serving subsystem
// (nsg.ShardedIndex) the way the paper measures its distributed
// deployments: response time at a target precision as the shard count r
// grows (Figure 7's NSG-16core and Table 5's NT column). cmd/bench -exp
// sharded prints the sweep and records it to BENCH_sharded.json so the
// serving-path trajectory is tracked across changes.

// ShardedPoint is one (shards, effort) measurement of the fan-out path.
type ShardedPoint struct {
	Shards     int     `json:"shards"`
	Effort     int     `json:"effort"`       // per-shard search pool L
	Recall     float64 `json:"recall"`       // mean recall@k vs exact ground truth
	QPS        float64 `json:"qps"`          // single-client queries/second
	MsPerQ     float64 `json:"ms_per_query"` // mean single-query response time
	Hops       float64 `json:"hops"`         // mean greedy expansions, summed over shards
	DistComps  float64 `json:"dist_comps"`   // mean distance evaluations, summed over shards
	BuildMs    float64 `json:"build_ms"`     // wall clock to build all r shards (repeated per row)
	IdxBytes   int64   `json:"index_bytes"`  // summed per-shard graph footprints
	AllocsPerQ float64 `json:"allocs_per_q"` // heap allocations per steady-state query
}

// ShardedTarget is the paper's headline serving metric: the smallest
// effort reaching the target recall and the response time there (Table 5's
// SQR column, Figure 7's latency-at-precision reading).
type ShardedTarget struct {
	Shards  int     `json:"shards"`
	Target  float64 `json:"target_recall"`
	Effort  int     `json:"effort"`
	MsPerQ  float64 `json:"ms_per_query"`
	Reached bool    `json:"reached"`
}

// ShardedResult is the serialized record of one -exp sharded run.
type ShardedResult struct {
	Dataset string          `json:"dataset"`
	N       int             `json:"n"`
	Dim     int             `json:"dim"`
	Queries int             `json:"queries"`
	K       int             `json:"k"`
	Points  []ShardedPoint  `json:"points"`
	Targets []ShardedTarget `json:"targets"`
}

// shardedShardCounts is the r sweep: 1 is the single-NSG reference and 8
// is the paper's 16-shard DEEP100M deployment scaled to laptop cores.
var shardedShardCounts = []int{1, 2, 4, 8}

// shardedEfforts is the per-shard L sweep for each shard count.
var shardedEfforts = []int{10, 20, 40, 80, 160}

// ShardedServing runs the sharded-serving experiment: for each shard count
// r it builds an nsg.ShardedIndex over one DEEP-like dataset and sweeps
// the per-shard search effort, reporting recall, QPS, response time and
// the merged per-shard work stats, plus the response time at 95% recall.
func ShardedServing(w io.Writer, c ExpConfig) error {
	n := c.n(20000)
	ds, err := dataset.DEEPLike(dataset.Config{N: n, Queries: c.Queries, GTK: c.GTK, Seed: c.Seed})
	if err != nil {
		return err
	}
	k := 10
	res := ShardedResult{Dataset: "DEEP-like", N: ds.Base.Rows, Dim: ds.Base.Dim, Queries: ds.Queries.Rows, K: k}

	fmt.Fprintf(w, "Sharded serving (nsg.ShardedIndex) on DEEP-like subset (n=%d, dim=%d, k=%d)\n", ds.Base.Rows, ds.Base.Dim, k)
	fmt.Fprintf(w, "%6s %8s %9s %9s %12s %10s %14s %12s\n",
		"shards", "effort", "recall", "QPS", "ms/query", "hops", "dist/query", "allocs/q")

	for _, shards := range shardedShardCounts {
		opts := nsg.DefaultShardedOptions(shards)
		opts.Shard.GraphK = 20
		opts.Shard.Seed = c.Seed
		data := append([]float32(nil), ds.Base.Data...)
		buildStart := time.Now()
		idx, err := nsg.BuildShardedFromFlat(data, ds.Base.Dim, opts)
		if err != nil {
			return fmt.Errorf("bench: sharded build (r=%d): %w", shards, err)
		}
		buildMs := time.Since(buildStart).Seconds() * 1000
		idxBytes := idx.Stats().IndexBytes

		target := ShardedTarget{Shards: shards, Target: 0.95}
		for _, effort := range shardedEfforts {
			pt, err := measureShardedPoint(idx, ds, k, effort)
			if err != nil {
				return err
			}
			pt.Shards = shards
			pt.BuildMs = buildMs
			pt.IdxBytes = idxBytes
			res.Points = append(res.Points, pt)
			fmt.Fprintf(w, "%6d %8d %9.4f %9.0f %12.4f %10.1f %14.0f %12.2f\n",
				shards, effort, pt.Recall, pt.QPS, pt.MsPerQ, pt.Hops, pt.DistComps, pt.AllocsPerQ)
			if !target.Reached && pt.Recall >= target.Target {
				target.Reached = true
				target.Effort = effort
				target.MsPerQ = pt.MsPerQ
			}
		}
		res.Targets = append(res.Targets, target)
		idx.Close()
	}

	fmt.Fprintf(w, "response time at recall>=0.95 (the paper's SQR/latency-at-precision metric):\n")
	for _, tg := range res.Targets {
		if tg.Reached {
			fmt.Fprintf(w, "  r=%-3d %10.4f ms/query (L=%d)\n", tg.Shards, tg.MsPerQ, tg.Effort)
		} else {
			fmt.Fprintf(w, "  r=%-3d     (0.95 unreachable in the effort sweep)\n", tg.Shards)
		}
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_sharded.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: write BENCH_sharded.json: %w", err)
	}
	fmt.Fprintln(w, "wrote BENCH_sharded.json")
	return nil
}

// measureShardedPoint scores one (index, effort) cell: recall over the
// query set, single-client latency/QPS, merged work stats, and the
// steady-state allocation count.
func measureShardedPoint(idx *nsg.ShardedIndex, ds dataset.Dataset, k, effort int) (ShardedPoint, error) {
	var pt ShardedPoint
	pt.Effort = effort

	// Warm the fan-out pools so the timed pass measures the steady state.
	for i := 0; i < 4 && i < ds.Queries.Rows; i++ {
		idx.SearchWithPool(ds.Queries.Row(i), k, effort)
	}

	got := make([][]int32, ds.Queries.Rows)
	var hops, comps float64
	allocStart := heapAllocs()
	start := time.Now()
	for qi := 0; qi < ds.Queries.Rows; qi++ {
		ids, _, st := idx.SearchWithStats(ds.Queries.Row(qi), k, effort)
		got[qi] = ids
		hops += float64(st.Hops)
		comps += float64(st.DistanceComputations)
	}
	elapsed := time.Since(start)
	allocs := heapAllocs() - allocStart
	// Two more timed passes, keeping the fastest overall: fan-out cells
	// with little per-query work are scheduler sensitive.
	if el := bestOf(2, func() {
		for qi := 0; qi < ds.Queries.Rows; qi++ {
			idx.SearchWithPool(ds.Queries.Row(qi), k, effort)
		}
	}); el < elapsed {
		elapsed = el
	}

	q := float64(ds.Queries.Rows)
	pt.Recall = dataset.MeanRecall(got, ds.GT, k)
	pt.QPS = q / elapsed.Seconds()
	pt.MsPerQ = elapsed.Seconds() * 1000 / q
	pt.Hops = hops / q
	pt.DistComps = comps / q
	// Each SearchWithStats allocates the two result slices plus whatever
	// the fan-out leaked; the JSON row records the total so regressions in
	// the zero-alloc serving path show up in the trajectory.
	pt.AllocsPerQ = float64(allocs) / q
	return pt, nil
}
