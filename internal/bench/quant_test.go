package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestQuantizedWritesJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	t.Chdir(t.TempDir())
	c := DefaultExpConfig()
	c.Scale = 0.04 // clamps to the 256-point floor; keep the smoke test fast
	c.Queries = 20
	var buf bytes.Buffer
	if err := Quantized(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"quantized search (SQ8, packed int4)", "variant", "bytes/hop", "recall>=0.99", "wrote BENCH_quant.json"} {
		if !strings.Contains(out, want) {
			t.Errorf("quant table missing %q:\n%s", want, out)
		}
	}
	blob, err := os.ReadFile("BENCH_quant.json")
	if err != nil {
		t.Fatalf("BENCH_quant.json not written: %v", err)
	}
	var res QuantResult
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("BENCH_quant.json not valid JSON: %v", err)
	}
	if res.N < 256 || res.K != 10 || res.Dim != 128 {
		t.Errorf("implausible record: n=%d dim=%d k=%d", res.N, res.Dim, res.K)
	}
	variants := quantVariants()
	if want := len(variants) * len(quantEfforts); len(res.Points) != want {
		t.Errorf("got %d points, want %d", len(res.Points), want)
	}
	if len(res.Targets) != len(variants) {
		t.Errorf("got %d targets, want %d", len(res.Targets), len(variants))
	}
	perHop := map[string]float64{}
	for _, pt := range res.Points {
		if pt.Recall < 0 || pt.Recall > 1 || pt.QPS <= 0 || pt.MsPerQ <= 0 {
			t.Errorf("implausible point: %+v", pt)
		}
		if pt.Hops <= 0 || pt.DistComps <= 0 || pt.BytesPerHop <= 0 {
			t.Errorf("work stats missing from point: %+v", pt)
		}
		if pt.Effort == 60 {
			perHop[pt.Variant] = pt.BytesPerHop
		}
	}
	// The point of the code matrix: SQ8 expansion must touch far fewer
	// bytes per hop than float32 (4x on the vector share), and packed int4
	// must halve the code share again.
	if sq8, fl := perHop["sq8"], perHop["float32"]; sq8 >= fl/2 {
		t.Errorf("sq8 bytes/hop %.0f not well below float32's %.0f", sq8, fl)
	}
	if i4, sq8 := perHop["int4"], perHop["sq8"]; i4 >= sq8 {
		t.Errorf("int4 bytes/hop %.0f not below sq8's %.0f", i4, sq8)
	}
	// On the floor dataset every reranked variant reaches high recall at
	// L=160; the raw int4 orderings get a lower floor — pricing that gap is
	// what the ablation is for.
	for _, pt := range res.Points {
		floor := 0.9
		if pt.Variant == "int4" || pt.Variant == "int4+relayout" {
			floor = 0.75
		}
		if pt.Effort == 160 && pt.Recall < floor {
			t.Errorf("%s at L=160: recall %.3f < %.2f", pt.Variant, pt.Recall, floor)
		}
	}
}

func TestQuantExperimentRegistered(t *testing.T) {
	if _, ok := Experiments()["quant"]; !ok {
		t.Error("experiment \"quant\" not registered")
	}
}
